//! Two-hop neighborhoods and common-neighbor counting.
//!
//! `SquarePruning` (Algorithm 3, lines 11–27) asks, for each alive vertex,
//! how many *other* same-side vertices share at least `⌈k·α⌉` neighbors with
//! it. Computing `|adj(x) ∩ adj(y)|` for all pairs is `O(|U|²·deg)`; instead
//! we enumerate **wedges**: for user `u`, walk each alive item `v ∈ adj(u)`,
//! then each alive user `u' ∈ adj(v)`, accumulating a count per `u'`. The
//! cost is `Σ_{v ∈ adj(u)} deg(v)`, which is what the paper's `reduce2Hop`
//! candidate ordering (borrowed from [Lyu et al., VLDB'20]) optimizes.

use crate::ids::{ItemId, UserId};
use crate::view::{GraphView, NeighborView};

/// Sparse map from a same-side vertex to the number of common neighbors,
/// reusable across calls to avoid re-allocation.
///
/// Internally a dense `u32` scratch array plus a touched-list, which is the
/// standard trick for repeated sparse accumulation over a fixed id space.
#[derive(Clone, Debug)]
pub struct CommonNeighborScratch {
    counts: Vec<u32>,
    touched: Vec<u32>,
    /// `(degree, id)` sort buffer for the cheap-first wedge-source ordering,
    /// kept here so the qualified-neighbor tests allocate nothing per call.
    order: Vec<(u32, u32)>,
}

impl CommonNeighborScratch {
    /// Scratch sized for `n` same-side vertices.
    pub fn new(n: usize) -> Self {
        Self {
            counts: vec![0; n],
            touched: Vec::new(),
            order: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for &t in &self.touched {
            self.counts[t as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Counts, for user `u`, the common-neighbor size with every other alive user
/// reachable in two hops, invoking `f(other, count)` for each.
///
/// `u` itself is **excluded**; callers that want the paper's self-inclusive
/// `(α,k)`-neighbor semantics (Definition 4 quantifies over all `u' ∈ U(C)`,
/// which includes `u` with `|adj(u) ∩ adj(u)| = deg(u)`) add it back
/// explicitly.
pub fn for_each_user_common_neighbor<V: NeighborView, F: FnMut(UserId, u32)>(
    view: &V,
    u: UserId,
    scratch: &mut CommonNeighborScratch,
    mut f: F,
) {
    scratch.clear();
    view.for_each_user_neighbor(u, |v| {
        view.for_each_item_neighbor(v, |u2| {
            if u2 == u {
                return;
            }
            let idx = u2.index();
            if scratch.counts[idx] == 0 {
                scratch.touched.push(u2.0);
            }
            scratch.counts[idx] += 1;
        });
    });
    for &t in &scratch.touched {
        f(UserId(t), scratch.counts[t as usize]);
    }
}

/// Item-side analogue of [`for_each_user_common_neighbor`].
pub fn for_each_item_common_neighbor<V: NeighborView, F: FnMut(ItemId, u32)>(
    view: &V,
    v: ItemId,
    scratch: &mut CommonNeighborScratch,
    mut f: F,
) {
    scratch.clear();
    view.for_each_item_neighbor(v, |u| {
        view.for_each_user_neighbor(u, |v2| {
            if v2 == v {
                return;
            }
            let idx = v2.index();
            if scratch.counts[idx] == 0 {
                scratch.touched.push(v2.0);
            }
            scratch.counts[idx] += 1;
        });
    });
    for &t in &scratch.touched {
        f(ItemId(t), scratch.counts[t as usize]);
    }
}

/// Decides whether user `u` has at least `need` other alive users sharing
/// `≥ bound` common neighbors with it — the `SquarePruning` survival test —
/// **without** computing the full common-neighbor map.
///
/// Two properties make this much cheaper than
/// [`for_each_user_common_neighbor`] on dense survivors:
///
/// * **Early exit.** Partial common counts only grow as more of `u`'s
///   adjacency is scanned, so the moment `need` partners have crossed
///   `bound` the answer is `true` — no further wedges needed. The test is
///   exact: a `false` is only returned after the full scan.
/// * **Cheap-first ordering.** `u`'s alive items are scanned in ascending
///   alive-degree order, so the handful of ultra-popular items (the most
///   expensive wedge sources) are visited last and usually skipped
///   entirely once dense-structure partners qualify.
///
/// Callers wanting the paper's self-inclusive Definition 4 count adjust
/// `need` for `u` itself (`|adj(u) ∩ adj(u)| = deg(u)`) before calling.
pub fn user_has_qualified_neighbors<V: NeighborView>(
    view: &V,
    u: UserId,
    bound: u32,
    need: usize,
    scratch: &mut CommonNeighborScratch,
) -> bool {
    if need == 0 {
        return true;
    }
    if bound == 0 {
        // Every alive co-clicker qualifies trivially; fall back to a plain
        // distinct-partner count with early exit.
        let mut n = 0;
        let mut done = false;
        scratch.clear();
        view.for_each_user_neighbor_while(u, |v| {
            view.for_each_item_neighbor_while(v, |u2| {
                if u2 == u {
                    return true;
                }
                let idx = u2.index();
                if scratch.counts[idx] == 0 {
                    scratch.touched.push(u2.0);
                    scratch.counts[idx] = 1;
                    n += 1;
                    if n >= need {
                        done = true;
                        return false;
                    }
                }
                true
            });
            !done
        });
        return done;
    }
    scratch.clear();
    let mut items = std::mem::take(&mut scratch.order);
    items.clear();
    view.for_each_user_neighbor(u, |v| items.push((view.item_degree(v) as u32, v.0)));
    items.sort_unstable();
    let mut qualified = 0usize;
    let mut done = false;
    for &(_, v) in &items {
        let v = ItemId(v);
        view.for_each_item_neighbor_while(v, |u2| {
            if u2 == u {
                return true;
            }
            let idx = u2.index();
            if scratch.counts[idx] == 0 {
                scratch.touched.push(u2.0);
            }
            scratch.counts[idx] += 1;
            if scratch.counts[idx] == bound {
                qualified += 1;
                if qualified >= need {
                    done = true;
                    return false;
                }
            }
            true
        });
        if done {
            break;
        }
    }
    scratch.order = items;
    done
}

/// Item-side analogue of [`user_has_qualified_neighbors`].
pub fn item_has_qualified_neighbors<V: NeighborView>(
    view: &V,
    v: ItemId,
    bound: u32,
    need: usize,
    scratch: &mut CommonNeighborScratch,
) -> bool {
    if need == 0 {
        return true;
    }
    if bound == 0 {
        let mut n = 0;
        let mut done = false;
        scratch.clear();
        view.for_each_item_neighbor_while(v, |u| {
            view.for_each_user_neighbor_while(u, |v2| {
                if v2 == v {
                    return true;
                }
                let idx = v2.index();
                if scratch.counts[idx] == 0 {
                    scratch.touched.push(v2.0);
                    scratch.counts[idx] = 1;
                    n += 1;
                    if n >= need {
                        done = true;
                        return false;
                    }
                }
                true
            });
            !done
        });
        return done;
    }
    scratch.clear();
    let mut users = std::mem::take(&mut scratch.order);
    users.clear();
    view.for_each_item_neighbor(v, |u| users.push((view.user_degree(u) as u32, u.0)));
    users.sort_unstable();
    let mut qualified = 0usize;
    let mut done = false;
    for &(_, u) in &users {
        let u = UserId(u);
        view.for_each_user_neighbor_while(u, |v2| {
            if v2 == v {
                return true;
            }
            let idx = v2.index();
            if scratch.counts[idx] == 0 {
                scratch.touched.push(v2.0);
            }
            scratch.counts[idx] += 1;
            if scratch.counts[idx] == bound {
                qualified += 1;
                if qualified >= need {
                    done = true;
                    return false;
                }
            }
            true
        });
        if done {
            break;
        }
    }
    scratch.order = users;
    done
}

/// Number of distinct users reachable from `u` in two hops (its two-hop
/// neighborhood size), used for the `reduce2Hop` candidate ordering.
pub fn user_two_hop_size<V: NeighborView>(
    view: &V,
    u: UserId,
    scratch: &mut CommonNeighborScratch,
) -> usize {
    let mut n = 0;
    for_each_user_common_neighbor(view, u, scratch, |_, _| n += 1);
    n
}

/// Number of distinct items reachable from `v` in two hops.
pub fn item_two_hop_size<V: NeighborView>(
    view: &V,
    v: ItemId,
    scratch: &mut CommonNeighborScratch,
) -> usize {
    let mut n = 0;
    for_each_item_common_neighbor(view, v, scratch, |_, _| n += 1);
    n
}

/// Reusable buffers for the sorted-intersection qualified-neighbor test:
/// the anchor's decoded alive adjacency, one candidate's decoded alive
/// adjacency, and a word-packed dedup bitmap over the same-side id space.
#[derive(Clone, Debug)]
pub struct SortedNeighborScratch {
    base: Vec<u32>,
    other: Vec<u32>,
    seen: Vec<u64>,
    touched_words: Vec<u32>,
}

impl SortedNeighborScratch {
    /// Scratch sized for `n` same-side vertices.
    pub fn new(n: usize) -> Self {
        Self {
            base: Vec::new(),
            other: Vec::new(),
            seen: vec![0u64; n.div_ceil(64)],
            touched_words: Vec::new(),
        }
    }

    fn clear_seen(&mut self) {
        for &w in &self.touched_words {
            self.seen[w as usize] = 0;
        }
        self.touched_words.clear();
    }

    /// Marks `idx` seen; returns true if it was newly marked.
    #[inline]
    fn mark(&mut self, idx: usize) -> bool {
        let w = idx / 64;
        let mask = 1u64 << (idx % 64);
        if self.seen[w] & mask != 0 {
            return false;
        }
        if self.seen[w] == 0 {
            self.touched_words.push(w as u32);
        }
        self.seen[w] |= mask;
        true
    }
}

/// First index `>= lo` with `a[idx] >= target`, by exponential (galloping)
/// search from `lo` followed by a binary search over the bracketed range.
#[inline]
fn gallop_from(a: &[u32], lo: usize, target: u32) -> usize {
    let mut step = 1usize;
    let mut prev = lo;
    let mut cur = lo;
    while cur < a.len() && a[cur] < target {
        prev = cur;
        cur += step;
        step *= 2;
    }
    let hi = cur.min(a.len());
    prev + a[prev..hi].partition_point(|&x| x < target)
}

/// When one list dwarfs the other by this factor, gallop through the long
/// one instead of two-pointer merging — `O(short · log long)` beats
/// `O(short + long)` on skewed degree pairs (star hubs vs leaf users).
const GALLOP_RATIO: usize = 8;

/// True iff `|a ∩ b| >= bound` for ascending duplicate-free `a`, `b`
/// (`bound >= 1`), exiting the moment the bound is reached.
fn sorted_intersection_reaches(a: &[u32], b: &[u32], bound: u32) -> bool {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() || (short.len() as u32) < bound {
        return false;
    }
    let mut count = 0u32;
    if long.len() / short.len() >= GALLOP_RATIO {
        let mut lo = 0usize;
        for &x in short {
            lo = gallop_from(long, lo, x);
            if lo >= long.len() {
                break;
            }
            if long[lo] == x {
                count += 1;
                if count >= bound {
                    return true;
                }
                lo += 1;
            }
        }
        return false;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < short.len() && j < long.len() {
        match short[i].cmp(&long[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                if count >= bound {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
    }
    false
}

/// Sorted-intersection variant of [`user_has_qualified_neighbors`]: same
/// contract, different machinery. Candidates are discovered by a wedge
/// walk (deduped via a bitmap), but each candidate's common-neighbor count
/// is then decided by intersecting two **sorted alive adjacency lists** —
/// sequential array scans with galloping on skewed degree pairs — instead
/// of accumulating per-wedge counts in a random-access scratch array.
///
/// This trades the wedge walk's scattered `counts[u2]` updates for
/// streaming merges, but pays Θ(deg(candidate)) per candidate where the
/// wedge counter pays O(1) per wedge — so for the one-to-all survival
/// query on hot-item anchors (many candidates, each with long adjacency)
/// the wedge counter is strictly cheaper, and the prune fixpoint uses it.
/// Reach for this variant when the candidate set is externally narrowed
/// (pair-style queries, seeds, risk drill-downs) or when a shard-sized
/// scratch array is unaffordable. `tests/proptest_twohop.rs` asserts the
/// two agree on random graphs and adversarial fixtures, on both graph
/// representations.
pub fn user_has_qualified_neighbors_sorted<V: NeighborView>(
    view: &V,
    u: UserId,
    bound: u32,
    need: usize,
    scratch: &mut SortedNeighborScratch,
) -> bool {
    if need == 0 {
        return true;
    }
    scratch.clear_seen();
    if bound == 0 {
        // Distinct-partner count with early exit (same semantics as the
        // wedge variant's bound==0 fallback).
        let mut n = 0usize;
        let mut done = false;
        view.for_each_user_neighbor_while(u, |v| {
            view.for_each_item_neighbor_while(v, |u2| {
                if u2 != u && scratch.mark(u2.index()) {
                    n += 1;
                    if n >= need {
                        done = true;
                        return false;
                    }
                }
                true
            });
            !done
        });
        return done;
    }
    // Anchor adjacency, decoded once. No candidate can share more than
    // |adj(u)| neighbors, so a short anchor settles the whole test.
    let mut base = std::mem::take(&mut scratch.base);
    base.clear();
    view.for_each_user_neighbor(u, |v| base.push(v.0));
    if (base.len() as u32) < bound {
        scratch.base = base;
        return false;
    }
    // Wedge sources cheap-first, mirroring the wedge variant's ordering.
    let mut items: Vec<(u32, ItemId)> = base
        .iter()
        .map(|&v| (view.item_degree(ItemId(v)) as u32, ItemId(v)))
        .collect();
    items.sort_unstable();
    let mut other = std::mem::take(&mut scratch.other);
    let mut candidates: Vec<UserId> = Vec::new();
    let mut qualified = 0usize;
    let mut done = false;
    for &(_, v) in &items {
        candidates.clear();
        view.for_each_item_neighbor(v, |u2| {
            if u2 != u && scratch.mark(u2.index()) {
                candidates.push(u2);
            }
        });
        for &u2 in &candidates {
            other.clear();
            view.for_each_user_neighbor(u2, |v2| other.push(v2.0));
            if sorted_intersection_reaches(&base, &other, bound) {
                qualified += 1;
                if qualified >= need {
                    done = true;
                    break;
                }
            }
        }
        if done {
            break;
        }
    }
    scratch.base = base;
    scratch.other = other;
    done
}

/// Item-side analogue of [`user_has_qualified_neighbors_sorted`].
pub fn item_has_qualified_neighbors_sorted<V: NeighborView>(
    view: &V,
    v: ItemId,
    bound: u32,
    need: usize,
    scratch: &mut SortedNeighborScratch,
) -> bool {
    if need == 0 {
        return true;
    }
    scratch.clear_seen();
    if bound == 0 {
        let mut n = 0usize;
        let mut done = false;
        view.for_each_item_neighbor_while(v, |u| {
            view.for_each_user_neighbor_while(u, |v2| {
                if v2 != v && scratch.mark(v2.index()) {
                    n += 1;
                    if n >= need {
                        done = true;
                        return false;
                    }
                }
                true
            });
            !done
        });
        return done;
    }
    let mut base = std::mem::take(&mut scratch.base);
    base.clear();
    view.for_each_item_neighbor(v, |u| base.push(u.0));
    if (base.len() as u32) < bound {
        scratch.base = base;
        return false;
    }
    let mut users: Vec<(u32, UserId)> = base
        .iter()
        .map(|&u| (view.user_degree(UserId(u)) as u32, UserId(u)))
        .collect();
    users.sort_unstable();
    let mut other = std::mem::take(&mut scratch.other);
    let mut candidates: Vec<ItemId> = Vec::new();
    let mut qualified = 0usize;
    let mut done = false;
    for &(_, u) in &users {
        candidates.clear();
        view.for_each_user_neighbor(u, |v2| {
            if v2 != v && scratch.mark(v2.index()) {
                candidates.push(v2);
            }
        });
        for &v2 in &candidates {
            other.clear();
            view.for_each_item_neighbor(v2, |u2| other.push(u2.0));
            if sorted_intersection_reaches(&base, &other, bound) {
                qualified += 1;
                if qualified >= need {
                    done = true;
                    break;
                }
            }
        }
        if done {
            break;
        }
    }
    scratch.base = base;
    scratch.other = other;
    done
}

/// Exact `|adj(u1) ∩ adj(u2)|` over alive items, by sorted-merge on the
/// static adjacency (cheap for spot checks and property tests).
pub fn user_common_neighbors(view: &GraphView<'_>, u1: UserId, u2: UserId) -> u32 {
    let g = view.graph();
    let (a, b) = (g.user_adjacency(u1), g.user_adjacency(u2));
    sorted_intersection_count(a, b, |v| view.item_alive(*v))
}

/// Exact `|adj(v1) ∩ adj(v2)|` over alive users.
pub fn item_common_neighbors(view: &GraphView<'_>, v1: ItemId, v2: ItemId) -> u32 {
    let g = view.graph();
    let (a, b) = (g.item_adjacency(v1), g.item_adjacency(v2));
    sorted_intersection_count(a, b, |u| view.user_alive(*u))
}

fn sorted_intersection_count<T: Ord + Copy, F: Fn(&T) -> bool>(a: &[T], b: &[T], alive: F) -> u32 {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if alive(&a[i]) {
                    n += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Marks an out-of-registry entry in the hub slot maps.
const NO_HUB: u32 = u32::MAX;

/// Candidate-bitmap words are swept in chunks of this many `u64`s (4 KiB)
/// during the blocked kernel's closed phase, so one chunk of the candidate
/// set and the matching chunk of a hub bitmap fit in L1 together.
const HUB_BLOCK_WORDS: usize = 512;

/// Dense alive-adjacency bitmaps for the highest-degree vertices of a view
/// — the *hubs* whose full wedge walks dominate SquarePruning cost.
///
/// For each of the top-K alive items (by current alive degree, above a
/// floor), the registry materializes its alive user set as a `u64` bitmap
/// over the user id space, with the popcount cached at build time;
/// symmetrically for the top users over the item space. The blocked
/// survival kernel then replaces "walk the hub's whole adjacency list" with
/// "AND the candidate bitmap against the hub bitmap", which skips 64
/// non-candidates per instruction.
///
/// # Staleness contract
///
/// Bitmaps snapshot the alive sets **at build time**. They stay *exact* for
/// the whole monotone pruning fixpoint that follows: the kernel only reads
/// `candidates ∧ hub`, candidates are discovered through currently-alive
/// walks, and current-alive ⊆ build-alive under removals, so the AND equals
/// the current alive intersection bit for bit. The registry therefore only
/// needs rebuilding when the id space itself changes — a compaction epoch —
/// not on every removal.
#[derive(Clone, Debug, Default)]
pub struct HubBitmaps {
    /// `item.index()` → slot in `item_bits`, or [`NO_HUB`].
    item_slot: Vec<u32>,
    /// Item-hub bitmaps over the **user** space, `user_stride` words each.
    item_bits: Vec<u64>,
    item_pop: Vec<u32>,
    user_stride: usize,
    /// `user.index()` → slot in `user_bits`, or [`NO_HUB`].
    user_slot: Vec<u32>,
    /// User-hub bitmaps over the **item** space, `item_stride` words each.
    user_bits: Vec<u64>,
    user_pop: Vec<u32>,
    item_stride: usize,
}

impl HubBitmaps {
    /// A registry with no hubs at all: every lookup misses, so the blocked
    /// kernel degrades to pure candidate-membership streaming.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds both sides from the view's current alive state: alive
    /// vertices with alive degree ≥ `min_degree`, highest degree first,
    /// at most `max_hubs` per side.
    pub fn build<V: NeighborView>(view: &V, min_degree: u32, max_hubs: usize) -> Self {
        let (nu, ni) = (view.num_users(), view.num_items());
        let user_stride = nu.div_ceil(64);
        let item_stride = ni.div_ceil(64);

        let mut hot_items: Vec<(u32, u32)> = (0..ni as u32)
            .filter(|&v| view.item_alive(ItemId(v)))
            .map(|v| (view.item_degree(ItemId(v)) as u32, v))
            .filter(|&(d, _)| d >= min_degree.max(1))
            .collect();
        hot_items.sort_unstable_by(|a, b| b.cmp(a));
        hot_items.truncate(max_hubs);
        let mut item_slot = vec![NO_HUB; ni];
        let mut item_bits = vec![0u64; hot_items.len() * user_stride];
        let mut item_pop = vec![0u32; hot_items.len()];
        for (slot, &(_, v)) in hot_items.iter().enumerate() {
            item_slot[v as usize] = slot as u32;
            let words = &mut item_bits[slot * user_stride..(slot + 1) * user_stride];
            view.for_each_item_neighbor(ItemId(v), |u| {
                words[u.index() / 64] |= 1u64 << (u.index() % 64);
            });
            item_pop[slot] = words.iter().map(|w| w.count_ones()).sum();
        }

        let mut hot_users: Vec<(u32, u32)> = (0..nu as u32)
            .filter(|&u| view.user_alive(UserId(u)))
            .map(|u| (view.user_degree(UserId(u)) as u32, u))
            .filter(|&(d, _)| d >= min_degree.max(1))
            .collect();
        hot_users.sort_unstable_by(|a, b| b.cmp(a));
        hot_users.truncate(max_hubs);
        let mut user_slot = vec![NO_HUB; nu];
        let mut user_bits = vec![0u64; hot_users.len() * item_stride];
        let mut user_pop = vec![0u32; hot_users.len()];
        for (slot, &(_, u)) in hot_users.iter().enumerate() {
            user_slot[u as usize] = slot as u32;
            let words = &mut user_bits[slot * item_stride..(slot + 1) * item_stride];
            view.for_each_user_neighbor(UserId(u), |v| {
                words[v.index() / 64] |= 1u64 << (v.index() % 64);
            });
            user_pop[slot] = words.iter().map(|w| w.count_ones()).sum();
        }

        Self {
            item_slot,
            item_bits,
            item_pop,
            user_stride,
            user_slot,
            user_bits,
            user_pop,
            item_stride,
        }
    }

    /// The bitmap of item hub `v` over the user space, if `v` is a hub.
    #[inline]
    pub fn item_hub_words(&self, v: ItemId) -> Option<&[u64]> {
        let slot = *self.item_slot.get(v.index())?;
        if slot == NO_HUB {
            return None;
        }
        let start = slot as usize * self.user_stride;
        Some(&self.item_bits[start..start + self.user_stride])
    }

    /// The bitmap of user hub `u` over the item space, if `u` is a hub.
    #[inline]
    pub fn user_hub_words(&self, u: UserId) -> Option<&[u64]> {
        let slot = *self.user_slot.get(u.index())?;
        if slot == NO_HUB {
            return None;
        }
        let start = slot as usize * self.item_stride;
        Some(&self.user_bits[start..start + self.item_stride])
    }

    /// Cached build-time popcount of item hub `v`'s bitmap.
    pub fn item_hub_popcount(&self, v: ItemId) -> Option<u32> {
        let slot = *self.item_slot.get(v.index())?;
        (slot != NO_HUB).then(|| self.item_pop[slot as usize])
    }

    /// Number of item-side hubs in the registry.
    pub fn item_hub_count(&self) -> usize {
        self.item_pop.len()
    }

    /// Number of user-side hubs in the registry.
    pub fn user_hub_count(&self) -> usize {
        self.user_pop.len()
    }

    /// Bytes of live payload (lengths, not capacities, so the figure is
    /// deterministic for a given view — it feeds a metrics gauge).
    pub fn heap_bytes(&self) -> usize {
        (self.item_slot.len() + self.user_slot.len()) * std::mem::size_of::<u32>()
            + (self.item_bits.len() + self.user_bits.len()) * std::mem::size_of::<u64>()
            + (self.item_pop.len() + self.user_pop.len()) * std::mem::size_of::<u32>()
    }
}

/// Unified per-worker scratch for all three survival kernels: the wedge
/// counter's counts/touched arrays, the sorted path's decode buffers, and
/// the blocked kernel's candidate bitmap — one lease covers any dispatch
/// decision, and nothing is allocated per call in steady state.
#[derive(Clone, Debug)]
pub struct KernelScratch {
    wedge: CommonNeighborScratch,
    sorted: SortedNeighborScratch,
    /// Candidate bitmap over the same-side id space (blocked kernel).
    cand_words: Vec<u64>,
    /// Indices of nonzero `cand_words`, for sparse clearing and sweeping.
    cand_touched: Vec<u32>,
    /// `(degree, id)` wedge-source ordering buffer.
    order: Vec<(u32, u32)>,
}

impl KernelScratch {
    /// Scratch sized for `n` same-side vertices.
    pub fn new(n: usize) -> Self {
        Self {
            wedge: CommonNeighborScratch::new(n),
            sorted: SortedNeighborScratch::new(n),
            cand_words: vec![0u64; n.div_ceil(64)],
            cand_touched: Vec::new(),
            order: Vec::new(),
        }
    }

    /// The wedge-counting kernel's view of this scratch.
    pub fn wedge_mut(&mut self) -> &mut CommonNeighborScratch {
        &mut self.wedge
    }

    /// The sorted-intersection kernel's view of this scratch.
    pub fn sorted_mut(&mut self) -> &mut SortedNeighborScratch {
        &mut self.sorted
    }
}

/// Cache-blocked SWAR variant of [`user_has_qualified_neighbors`]: same
/// contract, same answer, different cost shape on hub-heavy anchors.
///
/// The wedge counter pays `Σ deg(v)` over **all** of the anchor's items —
/// including the ultra-popular ones, whose adjacency walks dominate when
/// the early exit does not fire (every vertex that is ultimately *removed*
/// pays the full scan). This kernel splits the cheap-first item ordering
/// `v₁ … v_m` into two phases around `open = m − bound + 1`:
///
/// * **Open phase** (`v₁ … v_open`): a normal wedge walk that admits new
///   candidates into a bitmap + counts array. Any user sharing ≥ `bound`
///   items with the anchor occupies ≥ `bound` positions of the ordering,
///   so its *earliest* shared position is ≤ `m − bound` — every candidate
///   that can ever qualify is admitted here. (The argument holds for any
///   ordering, which is also why the phase split cannot change the
///   answer: the qualified set this kernel computes is exactly the wedge
///   counter's.)
/// * **Closed phase** (the `bound − 1` highest-degree items, i.e. the
///   likely hubs): no new candidates can qualify, so instead of walking
///   the hub's full adjacency the kernel ANDs the candidate bitmap
///   against the hub's [`HubBitmaps`] bitmap word by word, in
///   [`HUB_BLOCK_WORDS`]-sized blocks — a zero word skips 64
///   non-candidates at once, and only surviving bits touch the counts
///   array. Items without a registry entry fall back to streaming their
///   adjacency with O(1) candidate-membership tests.
///
/// Early exit fires the moment `need` candidates reach `bound`, in either
/// phase. `bound == 0` (distinct-partner counting) has no threshold to
/// phase on and delegates to the wedge walk unchanged.
pub fn blocked_user_has_qualified_neighbors<V: NeighborView>(
    view: &V,
    hubs: &HubBitmaps,
    u: UserId,
    bound: u32,
    need: usize,
    scratch: &mut KernelScratch,
) -> bool {
    if need == 0 {
        return true;
    }
    if bound == 0 {
        return user_has_qualified_neighbors(view, u, bound, need, &mut scratch.wedge);
    }
    let KernelScratch {
        wedge,
        cand_words,
        cand_touched,
        order,
        ..
    } = scratch;
    wedge.clear();
    for &w in cand_touched.iter() {
        cand_words[w as usize] = 0;
    }
    cand_touched.clear();
    order.clear();
    view.for_each_user_neighbor(u, |v| order.push((view.item_degree(v) as u32, v.0)));
    order.sort_unstable();
    let m = order.len();
    if (m as u32) < bound {
        return false;
    }
    let open = m - (bound as usize - 1);
    let mut qualified = 0usize;
    let mut done = false;
    for &(_, raw) in &order[..open] {
        let v = ItemId(raw);
        view.for_each_item_neighbor_while(v, |u2| {
            if u2 == u {
                return true;
            }
            let idx = u2.index();
            let (w, mask) = (idx / 64, 1u64 << (idx % 64));
            if cand_words[w] & mask == 0 {
                if cand_words[w] == 0 {
                    cand_touched.push(w as u32);
                }
                cand_words[w] |= mask;
                wedge.touched.push(u2.0);
            }
            wedge.counts[idx] += 1;
            if wedge.counts[idx] == bound {
                qualified += 1;
                if qualified >= need {
                    done = true;
                    return false;
                }
            }
            true
        });
        if done {
            return true;
        }
    }
    // Sweeping in ascending word order keeps both the candidate words and
    // the hub words streaming sequentially through each block.
    cand_touched.sort_unstable();
    for &(_, raw) in &order[open..] {
        let v = ItemId(raw);
        if let Some(hub) = hubs.item_hub_words(v) {
            debug_assert_eq!(hub.len(), cand_words.len(), "hub/scratch space mismatch");
            'blocks: for block in cand_touched.chunks(HUB_BLOCK_WORDS) {
                for &w in block {
                    let wi = w as usize;
                    let mut and = cand_words[wi] & hub[wi];
                    while and != 0 {
                        let idx = wi * 64 + and.trailing_zeros() as usize;
                        and &= and - 1;
                        wedge.counts[idx] += 1;
                        if wedge.counts[idx] == bound {
                            qualified += 1;
                            if qualified >= need {
                                done = true;
                                break 'blocks;
                            }
                        }
                    }
                }
            }
        } else {
            // No bitmap for this item: stream its adjacency, but keep the
            // closed-phase advantage — non-candidates cost one bit test,
            // never a counts-array touch or a touched-list push. The anchor
            // itself is never a candidate, so no self check is needed.
            view.for_each_item_neighbor_while(v, |u2| {
                let idx = u2.index();
                if cand_words[idx / 64] & (1u64 << (idx % 64)) != 0 {
                    wedge.counts[idx] += 1;
                    if wedge.counts[idx] == bound {
                        qualified += 1;
                        if qualified >= need {
                            done = true;
                            return false;
                        }
                    }
                }
                true
            });
        }
        if done {
            return true;
        }
    }
    false
}

/// Item-side analogue of [`blocked_user_has_qualified_neighbors`], using
/// the registry's user-side bitmaps (over the item space).
pub fn blocked_item_has_qualified_neighbors<V: NeighborView>(
    view: &V,
    hubs: &HubBitmaps,
    v: ItemId,
    bound: u32,
    need: usize,
    scratch: &mut KernelScratch,
) -> bool {
    if need == 0 {
        return true;
    }
    if bound == 0 {
        return item_has_qualified_neighbors(view, v, bound, need, &mut scratch.wedge);
    }
    let KernelScratch {
        wedge,
        cand_words,
        cand_touched,
        order,
        ..
    } = scratch;
    wedge.clear();
    for &w in cand_touched.iter() {
        cand_words[w as usize] = 0;
    }
    cand_touched.clear();
    order.clear();
    view.for_each_item_neighbor(v, |u| order.push((view.user_degree(u) as u32, u.0)));
    order.sort_unstable();
    let m = order.len();
    if (m as u32) < bound {
        return false;
    }
    let open = m - (bound as usize - 1);
    let mut qualified = 0usize;
    let mut done = false;
    for &(_, raw) in &order[..open] {
        let u = UserId(raw);
        view.for_each_user_neighbor_while(u, |v2| {
            if v2 == v {
                return true;
            }
            let idx = v2.index();
            let (w, mask) = (idx / 64, 1u64 << (idx % 64));
            if cand_words[w] & mask == 0 {
                if cand_words[w] == 0 {
                    cand_touched.push(w as u32);
                }
                cand_words[w] |= mask;
                wedge.touched.push(v2.0);
            }
            wedge.counts[idx] += 1;
            if wedge.counts[idx] == bound {
                qualified += 1;
                if qualified >= need {
                    done = true;
                    return false;
                }
            }
            true
        });
        if done {
            return true;
        }
    }
    cand_touched.sort_unstable();
    for &(_, raw) in &order[open..] {
        let u = UserId(raw);
        if let Some(hub) = hubs.user_hub_words(u) {
            debug_assert_eq!(hub.len(), cand_words.len(), "hub/scratch space mismatch");
            'blocks: for block in cand_touched.chunks(HUB_BLOCK_WORDS) {
                for &w in block {
                    let wi = w as usize;
                    let mut and = cand_words[wi] & hub[wi];
                    while and != 0 {
                        let idx = wi * 64 + and.trailing_zeros() as usize;
                        and &= and - 1;
                        wedge.counts[idx] += 1;
                        if wedge.counts[idx] == bound {
                            qualified += 1;
                            if qualified >= need {
                                done = true;
                                break 'blocks;
                            }
                        }
                    }
                }
            }
        } else {
            view.for_each_user_neighbor_while(u, |v2| {
                let idx = v2.index();
                if cand_words[idx / 64] & (1u64 << (idx % 64)) != 0 {
                    wedge.counts[idx] += 1;
                    if wedge.counts[idx] == bound {
                        qualified += 1;
                        if qualified >= need {
                            done = true;
                            return false;
                        }
                    }
                }
                true
            });
        }
        if done {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, GraphView};
    use std::collections::HashMap;

    fn sample() -> crate::BipartiteGraph {
        // u0: {i0,i1,i2} ; u1: {i0,i1} ; u2: {i2,i3} ; u3: {i3}
        let mut b = GraphBuilder::new();
        for (u, v) in [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 1),
            (2, 2),
            (2, 3),
            (3, 3),
        ] {
            b.add_click(UserId(u), ItemId(v), 1);
        }
        b.build()
    }

    fn counts_of(view: &GraphView<'_>, u: UserId) -> HashMap<UserId, u32> {
        let mut scratch = CommonNeighborScratch::new(view.graph().num_users());
        let mut m = HashMap::new();
        for_each_user_common_neighbor(view, u, &mut scratch, |o, c| {
            m.insert(o, c);
        });
        m
    }

    #[test]
    fn wedge_counts_match_pairwise_intersection() {
        let g = sample();
        let view = GraphView::full(&g);
        let m = counts_of(&view, UserId(0));
        assert_eq!(m[&UserId(1)], 2);
        assert_eq!(m[&UserId(2)], 1);
        assert!(!m.contains_key(&UserId(3)));
        assert_eq!(user_common_neighbors(&view, UserId(0), UserId(1)), 2);
        assert_eq!(user_common_neighbors(&view, UserId(0), UserId(3)), 0);
    }

    #[test]
    fn dead_vertices_are_skipped() {
        let g = sample();
        let mut view = GraphView::full(&g);
        view.remove_item(ItemId(1));
        let m = counts_of(&view, UserId(0));
        assert_eq!(m[&UserId(1)], 1, "i1 removed, only i0 shared");
        assert_eq!(user_common_neighbors(&view, UserId(0), UserId(1)), 1);
    }

    #[test]
    fn removed_user_does_not_appear() {
        let g = sample();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(1));
        let m = counts_of(&view, UserId(0));
        assert!(!m.contains_key(&UserId(1)));
    }

    #[test]
    fn two_hop_sizes() {
        let g = sample();
        let view = GraphView::full(&g);
        let mut s = CommonNeighborScratch::new(g.num_users());
        assert_eq!(user_two_hop_size(&view, UserId(0), &mut s), 2);
        assert_eq!(user_two_hop_size(&view, UserId(3), &mut s), 1);
        let mut s = CommonNeighborScratch::new(g.num_items());
        assert_eq!(item_two_hop_size(&view, ItemId(0), &mut s), 2); // i1 (via u0,u1), i2 (via u0)
    }

    #[test]
    fn item_side_counts() {
        let g = sample();
        let view = GraphView::full(&g);
        let mut scratch = CommonNeighborScratch::new(g.num_items());
        let mut m = HashMap::new();
        for_each_item_common_neighbor(&view, ItemId(0), &mut scratch, |o, c| {
            m.insert(o, c);
        });
        assert_eq!(m[&ItemId(1)], 2); // shared users u0, u1
        assert_eq!(m[&ItemId(2)], 1); // shared user u0
        assert_eq!(item_common_neighbors(&view, ItemId(0), ItemId(1)), 2);
    }

    #[test]
    fn qualified_neighbor_test_matches_full_count() {
        // A denser mixed graph: a 4x3 block plus stragglers.
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in 0..3u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        for (u, v) in [(0, 3), (1, 3), (4, 0), (4, 3), (5, 4)] {
            b.add_click(UserId(u), ItemId(v), 1);
        }
        let g = b.build();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(5));
        let mut scratch = CommonNeighborScratch::new(g.num_users());
        for u in (0..g.num_users() as u32).map(UserId) {
            if !view.user_alive(u) {
                continue;
            }
            for bound in 0..4u32 {
                let mut full = 0usize;
                for_each_user_common_neighbor(&view, u, &mut scratch, |_, c| {
                    if c >= bound.max(1) {
                        full += 1;
                    }
                });
                if bound == 0 {
                    // bound 0 counts distinct partners.
                    full = 0;
                    for_each_user_common_neighbor(&view, u, &mut scratch, |_, _| full += 1);
                }
                for need in 0..6usize {
                    assert_eq!(
                        user_has_qualified_neighbors(&view, u, bound, need, &mut scratch),
                        full >= need,
                        "u={u:?} bound={bound} need={need} full={full}"
                    );
                }
            }
        }
        let mut iscratch = CommonNeighborScratch::new(g.num_items());
        for v in (0..g.num_items() as u32).map(ItemId) {
            for bound in 1..4u32 {
                let mut full = 0usize;
                for_each_item_common_neighbor(&view, v, &mut iscratch, |_, c| {
                    if c >= bound {
                        full += 1;
                    }
                });
                for need in 0..6usize {
                    assert_eq!(
                        item_has_qualified_neighbors(&view, v, bound, need, &mut iscratch),
                        full >= need,
                        "v={v:?} bound={bound} need={need} full={full}"
                    );
                }
            }
        }
    }

    #[test]
    fn gallop_finds_first_not_less() {
        let a = [2u32, 4, 4, 8, 16, 32, 64, 100];
        // (a has no duplicates in real adjacency; gallop still behaves.)
        for (lo, target, want) in [
            (0usize, 0u32, 0usize),
            (0, 2, 0),
            (0, 3, 1),
            (0, 100, 7),
            (0, 101, 8),
            (3, 5, 3),
            (5, 33, 6),
            (8, 1, 8),
        ] {
            assert_eq!(gallop_from(&a, lo, target), want, "lo={lo} target={target}");
        }
    }

    #[test]
    fn sorted_intersection_reaches_matches_exact_count() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[1, 2, 3]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[1, 3, 5, 7], &[2, 3, 6, 7, 9]),
            (
                &[5],
                &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
            ),
            (
                &[0, 16],
                &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16],
            ),
        ];
        for &(a, b) in cases {
            let exact = a.iter().filter(|x| b.contains(x)).count() as u32;
            for bound in 1..=4u32 {
                assert_eq!(
                    sorted_intersection_reaches(a, b, bound),
                    exact >= bound,
                    "a={a:?} b={b:?} bound={bound}"
                );
                // Both argument orders must agree.
                assert_eq!(sorted_intersection_reaches(b, a, bound), exact >= bound);
            }
        }
    }

    #[test]
    fn sorted_qualified_matches_wedge_qualified() {
        let mut b = GraphBuilder::new();
        // Star hub item 0 + a dense 4x3 block + a degree-1 chain.
        for u in 0..8u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        for u in 0..4u32 {
            for v in 1..4u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        b.add_click(UserId(8), ItemId(4), 1);
        b.add_click(UserId(9), ItemId(5), 1);
        let g = b.build();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(7));
        view.remove_item(ItemId(3));
        let mut wedge = CommonNeighborScratch::new(g.num_users());
        let mut sorted = SortedNeighborScratch::new(g.num_users());
        for u in (0..g.num_users() as u32).map(UserId) {
            for bound in 0..5u32 {
                for need in 0..6usize {
                    assert_eq!(
                        user_has_qualified_neighbors_sorted(&view, u, bound, need, &mut sorted),
                        user_has_qualified_neighbors(&view, u, bound, need, &mut wedge),
                        "u={u:?} bound={bound} need={need}"
                    );
                }
            }
        }
        let mut iwedge = CommonNeighborScratch::new(g.num_items());
        let mut isorted = SortedNeighborScratch::new(g.num_items());
        for v in (0..g.num_items() as u32).map(ItemId) {
            for bound in 0..5u32 {
                for need in 0..6usize {
                    assert_eq!(
                        item_has_qualified_neighbors_sorted(&view, v, bound, need, &mut isorted),
                        item_has_qualified_neighbors(&view, v, bound, need, &mut iwedge),
                        "v={v:?} bound={bound} need={need}"
                    );
                }
            }
        }
    }

    #[test]
    fn sorted_qualified_agrees_on_compact_view() {
        let g = sample();
        let c = crate::CompactBigraph::from_graph(&g);
        let dense = GraphView::full(&g);
        let compact = crate::CompactView::full(&c);
        let mut sorted = SortedNeighborScratch::new(g.num_users());
        for u in (0..g.num_users() as u32).map(UserId) {
            for bound in 0..4u32 {
                for need in 0..5usize {
                    assert_eq!(
                        user_has_qualified_neighbors_sorted(&dense, u, bound, need, &mut sorted),
                        user_has_qualified_neighbors_sorted(&compact, u, bound, need, &mut sorted),
                        "u={u:?} bound={bound} need={need}"
                    );
                }
            }
        }
    }

    #[test]
    fn qualified_test_leaves_scratch_reusable() {
        let g = sample();
        let view = GraphView::full(&g);
        let mut scratch = CommonNeighborScratch::new(g.num_users());
        assert!(user_has_qualified_neighbors(
            &view,
            UserId(0),
            2,
            1,
            &mut scratch
        ));
        // The early exit may leave counts dirty; the next full enumeration
        // with the SAME scratch must still be correct because it clears
        // first.
        let mut m = HashMap::new();
        for_each_user_common_neighbor(&view, UserId(0), &mut scratch, |o, c| {
            m.insert(o, c);
        });
        assert_eq!(m[&UserId(1)], 2);
        assert_eq!(m[&UserId(2)], 1);
    }

    #[test]
    fn hub_registry_selects_top_degree_vertices() {
        let mut b = GraphBuilder::new();
        // Item 0 is hot (8 users), item 1 mid (4), the rest degree 1–3.
        for u in 0..8u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        for u in 0..4u32 {
            b.add_click(UserId(u), ItemId(1), 1);
        }
        b.add_click(UserId(0), ItemId(2), 1);
        let g = b.build();
        let view = GraphView::full(&g);
        let hubs = HubBitmaps::build(&view, 4, 1);
        assert_eq!(hubs.item_hub_count(), 1, "only the top-1 item kept");
        assert!(hubs.item_hub_words(ItemId(0)).is_some());
        assert!(hubs.item_hub_words(ItemId(1)).is_none());
        assert_eq!(hubs.item_hub_popcount(ItemId(0)), Some(8));
        let words = hubs.item_hub_words(ItemId(0)).unwrap();
        assert_eq!(words[0], 0xff, "users 0..8 set");
        assert!(hubs.heap_bytes() > 0);
        // Degree floor keeps sparse vertices out entirely.
        let none = HubBitmaps::build(&view, 100, 8);
        assert_eq!(none.item_hub_count(), 0);
        assert_eq!(none.user_hub_count(), 0);
        // The empty registry answers every lookup with a miss.
        assert!(HubBitmaps::empty().item_hub_words(ItemId(0)).is_none());
    }

    #[test]
    fn hub_bitmaps_snapshot_alive_state_at_build() {
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        let g = b.build();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(3));
        let hubs = HubBitmaps::build(&view, 1, 4);
        let words = hubs.item_hub_words(ItemId(0)).unwrap();
        assert_eq!(words[0], 0xff & !(1 << 3), "dead user excluded at build");
        assert_eq!(hubs.item_hub_popcount(ItemId(0)), Some(7));
    }

    /// The blocked kernel must agree with the wedge kernel everywhere —
    /// with a populated registry, with an empty one (pure membership
    /// streaming), and after removals that leave the registry stale.
    #[test]
    fn blocked_qualified_matches_wedge_qualified() {
        let mut b = GraphBuilder::new();
        // Star hub item 0 + a dense 4x3 block + a degree-1 chain (the
        // sorted-vs-wedge fixture, reused for three-way coverage).
        for u in 0..8u32 {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        for u in 0..4u32 {
            for v in 1..4u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        b.add_click(UserId(8), ItemId(4), 1);
        b.add_click(UserId(9), ItemId(5), 1);
        let g = b.build();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(7));
        view.remove_item(ItemId(3));
        for registry in [
            HubBitmaps::build(&view, 1, 64),
            HubBitmaps::build(&view, 4, 2),
            HubBitmaps::empty(),
        ] {
            let mut wedge = CommonNeighborScratch::new(g.num_users());
            let mut ks = KernelScratch::new(g.num_users());
            for u in (0..g.num_users() as u32).map(UserId) {
                for bound in 0..5u32 {
                    for need in 0..6usize {
                        assert_eq!(
                            blocked_user_has_qualified_neighbors(
                                &view, &registry, u, bound, need, &mut ks
                            ),
                            user_has_qualified_neighbors(&view, u, bound, need, &mut wedge),
                            "u={u:?} bound={bound} need={need}"
                        );
                    }
                }
            }
            let mut iwedge = CommonNeighborScratch::new(g.num_items());
            let mut iks = KernelScratch::new(g.num_items());
            for v in (0..g.num_items() as u32).map(ItemId) {
                for bound in 0..5u32 {
                    for need in 0..6usize {
                        assert_eq!(
                            blocked_item_has_qualified_neighbors(
                                &view, &registry, v, bound, need, &mut iks
                            ),
                            item_has_qualified_neighbors(&view, v, bound, need, &mut iwedge),
                            "v={v:?} bound={bound} need={need}"
                        );
                    }
                }
            }
        }
    }

    /// Stale-registry soundness: hubs built *before* removals must still
    /// answer exactly for the shrunken alive set (the monotone-fixpoint
    /// contract the prune loops rely on).
    #[test]
    fn blocked_kernel_exact_under_stale_hubs() {
        let mut b = GraphBuilder::new();
        for u in 0..10u32 {
            for v in 0..6u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        let g = b.build();
        let mut view = GraphView::full(&g);
        let hubs = HubBitmaps::build(&view, 1, 64);
        // Kill users/items after the build; the registry is now stale.
        for u in [1u32, 4, 7] {
            view.remove_user(UserId(u));
        }
        view.remove_item(ItemId(2));
        let mut wedge = CommonNeighborScratch::new(g.num_users());
        let mut ks = KernelScratch::new(g.num_users());
        for u in (0..g.num_users() as u32).map(UserId) {
            for bound in 0..7u32 {
                for need in 0..8usize {
                    assert_eq!(
                        blocked_user_has_qualified_neighbors(&view, &hubs, u, bound, need, &mut ks),
                        user_has_qualified_neighbors(&view, u, bound, need, &mut wedge),
                        "u={u:?} bound={bound} need={need}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_scratch_reuse_is_clean() {
        let g = sample();
        let view = GraphView::full(&g);
        let hubs = HubBitmaps::build(&view, 1, 8);
        let mut ks = KernelScratch::new(g.num_users());
        // Early-exit call leaves the candidate bitmap dirty; the next call
        // (different anchor, different outcome) must still be exact.
        assert!(blocked_user_has_qualified_neighbors(
            &view,
            &hubs,
            UserId(0),
            2,
            1,
            &mut ks
        ));
        assert!(!blocked_user_has_qualified_neighbors(
            &view,
            &hubs,
            UserId(3),
            1,
            2,
            &mut ks
        ));
        // And the embedded wedge scratch is still clean for enumeration.
        let mut m = HashMap::new();
        for_each_user_common_neighbor(&view, UserId(0), ks.wedge_mut(), |o, c| {
            m.insert(o, c);
        });
        assert_eq!(m[&UserId(1)], 2);
        assert_eq!(m[&UserId(2)], 1);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = sample();
        let view = GraphView::full(&g);
        let mut scratch = CommonNeighborScratch::new(g.num_users());
        // Run twice with the same scratch: second result must be identical.
        let mut first = vec![];
        for_each_user_common_neighbor(&view, UserId(0), &mut scratch, |o, c| first.push((o, c)));
        let mut second = vec![];
        for_each_user_common_neighbor(&view, UserId(0), &mut scratch, |o, c| second.push((o, c)));
        first.sort();
        second.sort();
        assert_eq!(first, second);
    }
}
