//! Two-hop neighborhoods and common-neighbor counting.
//!
//! `SquarePruning` (Algorithm 3, lines 11–27) asks, for each alive vertex,
//! how many *other* same-side vertices share at least `⌈k·α⌉` neighbors with
//! it. Computing `|adj(x) ∩ adj(y)|` for all pairs is `O(|U|²·deg)`; instead
//! we enumerate **wedges**: for user `u`, walk each alive item `v ∈ adj(u)`,
//! then each alive user `u' ∈ adj(v)`, accumulating a count per `u'`. The
//! cost is `Σ_{v ∈ adj(u)} deg(v)`, which is what the paper's `reduce2Hop`
//! candidate ordering (borrowed from [Lyu et al., VLDB'20]) optimizes.

use crate::ids::{ItemId, UserId};
use crate::view::GraphView;

/// Sparse map from a same-side vertex to the number of common neighbors,
/// reusable across calls to avoid re-allocation.
///
/// Internally a dense `u32` scratch array plus a touched-list, which is the
/// standard trick for repeated sparse accumulation over a fixed id space.
#[derive(Clone, Debug)]
pub struct CommonNeighborScratch {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl CommonNeighborScratch {
    /// Scratch sized for `n` same-side vertices.
    pub fn new(n: usize) -> Self {
        Self {
            counts: vec![0; n],
            touched: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for &t in &self.touched {
            self.counts[t as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Counts, for user `u`, the common-neighbor size with every other alive user
/// reachable in two hops, invoking `f(other, count)` for each.
///
/// `u` itself is **excluded**; callers that want the paper's self-inclusive
/// `(α,k)`-neighbor semantics (Definition 4 quantifies over all `u' ∈ U(C)`,
/// which includes `u` with `|adj(u) ∩ adj(u)| = deg(u)`) add it back
/// explicitly.
pub fn for_each_user_common_neighbor<F: FnMut(UserId, u32)>(
    view: &GraphView<'_>,
    u: UserId,
    scratch: &mut CommonNeighborScratch,
    mut f: F,
) {
    scratch.clear();
    for (v, _) in view.user_neighbors(u) {
        for (u2, _) in view.item_neighbors(v) {
            if u2 == u {
                continue;
            }
            let idx = u2.index();
            if scratch.counts[idx] == 0 {
                scratch.touched.push(u2.0);
            }
            scratch.counts[idx] += 1;
        }
    }
    for &t in &scratch.touched {
        f(UserId(t), scratch.counts[t as usize]);
    }
}

/// Item-side analogue of [`for_each_user_common_neighbor`].
pub fn for_each_item_common_neighbor<F: FnMut(ItemId, u32)>(
    view: &GraphView<'_>,
    v: ItemId,
    scratch: &mut CommonNeighborScratch,
    mut f: F,
) {
    scratch.clear();
    for (u, _) in view.item_neighbors(v) {
        for (v2, _) in view.user_neighbors(u) {
            if v2 == v {
                continue;
            }
            let idx = v2.index();
            if scratch.counts[idx] == 0 {
                scratch.touched.push(v2.0);
            }
            scratch.counts[idx] += 1;
        }
    }
    for &t in &scratch.touched {
        f(ItemId(t), scratch.counts[t as usize]);
    }
}

/// Decides whether user `u` has at least `need` other alive users sharing
/// `≥ bound` common neighbors with it — the `SquarePruning` survival test —
/// **without** computing the full common-neighbor map.
///
/// Two properties make this much cheaper than
/// [`for_each_user_common_neighbor`] on dense survivors:
///
/// * **Early exit.** Partial common counts only grow as more of `u`'s
///   adjacency is scanned, so the moment `need` partners have crossed
///   `bound` the answer is `true` — no further wedges needed. The test is
///   exact: a `false` is only returned after the full scan.
/// * **Cheap-first ordering.** `u`'s alive items are scanned in ascending
///   alive-degree order, so the handful of ultra-popular items (the most
///   expensive wedge sources) are visited last and usually skipped
///   entirely once dense-structure partners qualify.
///
/// Callers wanting the paper's self-inclusive Definition 4 count adjust
/// `need` for `u` itself (`|adj(u) ∩ adj(u)| = deg(u)`) before calling.
pub fn user_has_qualified_neighbors(
    view: &GraphView<'_>,
    u: UserId,
    bound: u32,
    need: usize,
    scratch: &mut CommonNeighborScratch,
) -> bool {
    if need == 0 {
        return true;
    }
    if bound == 0 {
        // Every alive co-clicker qualifies trivially; fall back to a plain
        // distinct-partner count with early exit.
        let mut n = 0;
        scratch.clear();
        for (v, _) in view.user_neighbors(u) {
            for (u2, _) in view.item_neighbors(v) {
                if u2 == u {
                    continue;
                }
                let idx = u2.index();
                if scratch.counts[idx] == 0 {
                    scratch.touched.push(u2.0);
                    scratch.counts[idx] = 1;
                    n += 1;
                    if n >= need {
                        return true;
                    }
                }
            }
        }
        return false;
    }
    scratch.clear();
    let mut items: Vec<(u32, ItemId)> = view
        .user_neighbors(u)
        .map(|(v, _)| (view.item_degree(v) as u32, v))
        .collect();
    items.sort_unstable();
    let mut qualified = 0usize;
    for &(_, v) in &items {
        for (u2, _) in view.item_neighbors(v) {
            if u2 == u {
                continue;
            }
            let idx = u2.index();
            if scratch.counts[idx] == 0 {
                scratch.touched.push(u2.0);
            }
            scratch.counts[idx] += 1;
            if scratch.counts[idx] == bound {
                qualified += 1;
                if qualified >= need {
                    return true;
                }
            }
        }
    }
    false
}

/// Item-side analogue of [`user_has_qualified_neighbors`].
pub fn item_has_qualified_neighbors(
    view: &GraphView<'_>,
    v: ItemId,
    bound: u32,
    need: usize,
    scratch: &mut CommonNeighborScratch,
) -> bool {
    if need == 0 {
        return true;
    }
    if bound == 0 {
        let mut n = 0;
        scratch.clear();
        for (u, _) in view.item_neighbors(v) {
            for (v2, _) in view.user_neighbors(u) {
                if v2 == v {
                    continue;
                }
                let idx = v2.index();
                if scratch.counts[idx] == 0 {
                    scratch.touched.push(v2.0);
                    scratch.counts[idx] = 1;
                    n += 1;
                    if n >= need {
                        return true;
                    }
                }
            }
        }
        return false;
    }
    scratch.clear();
    let mut users: Vec<(u32, UserId)> = view
        .item_neighbors(v)
        .map(|(u, _)| (view.user_degree(u) as u32, u))
        .collect();
    users.sort_unstable();
    let mut qualified = 0usize;
    for &(_, u) in &users {
        for (v2, _) in view.user_neighbors(u) {
            if v2 == v {
                continue;
            }
            let idx = v2.index();
            if scratch.counts[idx] == 0 {
                scratch.touched.push(v2.0);
            }
            scratch.counts[idx] += 1;
            if scratch.counts[idx] == bound {
                qualified += 1;
                if qualified >= need {
                    return true;
                }
            }
        }
    }
    false
}

/// Number of distinct users reachable from `u` in two hops (its two-hop
/// neighborhood size), used for the `reduce2Hop` candidate ordering.
pub fn user_two_hop_size(
    view: &GraphView<'_>,
    u: UserId,
    scratch: &mut CommonNeighborScratch,
) -> usize {
    let mut n = 0;
    for_each_user_common_neighbor(view, u, scratch, |_, _| n += 1);
    n
}

/// Number of distinct items reachable from `v` in two hops.
pub fn item_two_hop_size(
    view: &GraphView<'_>,
    v: ItemId,
    scratch: &mut CommonNeighborScratch,
) -> usize {
    let mut n = 0;
    for_each_item_common_neighbor(view, v, scratch, |_, _| n += 1);
    n
}

/// Exact `|adj(u1) ∩ adj(u2)|` over alive items, by sorted-merge on the
/// static adjacency (cheap for spot checks and property tests).
pub fn user_common_neighbors(view: &GraphView<'_>, u1: UserId, u2: UserId) -> u32 {
    let g = view.graph();
    let (a, b) = (g.user_adjacency(u1), g.user_adjacency(u2));
    sorted_intersection_count(a, b, |v| view.item_alive(*v))
}

/// Exact `|adj(v1) ∩ adj(v2)|` over alive users.
pub fn item_common_neighbors(view: &GraphView<'_>, v1: ItemId, v2: ItemId) -> u32 {
    let g = view.graph();
    let (a, b) = (g.item_adjacency(v1), g.item_adjacency(v2));
    sorted_intersection_count(a, b, |u| view.user_alive(*u))
}

fn sorted_intersection_count<T: Ord + Copy, F: Fn(&T) -> bool>(a: &[T], b: &[T], alive: F) -> u32 {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if alive(&a[i]) {
                    n += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, GraphView};
    use std::collections::HashMap;

    fn sample() -> crate::BipartiteGraph {
        // u0: {i0,i1,i2} ; u1: {i0,i1} ; u2: {i2,i3} ; u3: {i3}
        let mut b = GraphBuilder::new();
        for (u, v) in [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 1),
            (2, 2),
            (2, 3),
            (3, 3),
        ] {
            b.add_click(UserId(u), ItemId(v), 1);
        }
        b.build()
    }

    fn counts_of(view: &GraphView<'_>, u: UserId) -> HashMap<UserId, u32> {
        let mut scratch = CommonNeighborScratch::new(view.graph().num_users());
        let mut m = HashMap::new();
        for_each_user_common_neighbor(view, u, &mut scratch, |o, c| {
            m.insert(o, c);
        });
        m
    }

    #[test]
    fn wedge_counts_match_pairwise_intersection() {
        let g = sample();
        let view = GraphView::full(&g);
        let m = counts_of(&view, UserId(0));
        assert_eq!(m[&UserId(1)], 2);
        assert_eq!(m[&UserId(2)], 1);
        assert!(!m.contains_key(&UserId(3)));
        assert_eq!(user_common_neighbors(&view, UserId(0), UserId(1)), 2);
        assert_eq!(user_common_neighbors(&view, UserId(0), UserId(3)), 0);
    }

    #[test]
    fn dead_vertices_are_skipped() {
        let g = sample();
        let mut view = GraphView::full(&g);
        view.remove_item(ItemId(1));
        let m = counts_of(&view, UserId(0));
        assert_eq!(m[&UserId(1)], 1, "i1 removed, only i0 shared");
        assert_eq!(user_common_neighbors(&view, UserId(0), UserId(1)), 1);
    }

    #[test]
    fn removed_user_does_not_appear() {
        let g = sample();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(1));
        let m = counts_of(&view, UserId(0));
        assert!(!m.contains_key(&UserId(1)));
    }

    #[test]
    fn two_hop_sizes() {
        let g = sample();
        let view = GraphView::full(&g);
        let mut s = CommonNeighborScratch::new(g.num_users());
        assert_eq!(user_two_hop_size(&view, UserId(0), &mut s), 2);
        assert_eq!(user_two_hop_size(&view, UserId(3), &mut s), 1);
        let mut s = CommonNeighborScratch::new(g.num_items());
        assert_eq!(item_two_hop_size(&view, ItemId(0), &mut s), 2); // i1 (via u0,u1), i2 (via u0)
    }

    #[test]
    fn item_side_counts() {
        let g = sample();
        let view = GraphView::full(&g);
        let mut scratch = CommonNeighborScratch::new(g.num_items());
        let mut m = HashMap::new();
        for_each_item_common_neighbor(&view, ItemId(0), &mut scratch, |o, c| {
            m.insert(o, c);
        });
        assert_eq!(m[&ItemId(1)], 2); // shared users u0, u1
        assert_eq!(m[&ItemId(2)], 1); // shared user u0
        assert_eq!(item_common_neighbors(&view, ItemId(0), ItemId(1)), 2);
    }

    #[test]
    fn qualified_neighbor_test_matches_full_count() {
        // A denser mixed graph: a 4x3 block plus stragglers.
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in 0..3u32 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        for (u, v) in [(0, 3), (1, 3), (4, 0), (4, 3), (5, 4)] {
            b.add_click(UserId(u), ItemId(v), 1);
        }
        let g = b.build();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(5));
        let mut scratch = CommonNeighborScratch::new(g.num_users());
        for u in (0..g.num_users() as u32).map(UserId) {
            if !view.user_alive(u) {
                continue;
            }
            for bound in 0..4u32 {
                let mut full = 0usize;
                for_each_user_common_neighbor(&view, u, &mut scratch, |_, c| {
                    if c >= bound.max(1) {
                        full += 1;
                    }
                });
                if bound == 0 {
                    // bound 0 counts distinct partners.
                    full = 0;
                    for_each_user_common_neighbor(&view, u, &mut scratch, |_, _| full += 1);
                }
                for need in 0..6usize {
                    assert_eq!(
                        user_has_qualified_neighbors(&view, u, bound, need, &mut scratch),
                        full >= need,
                        "u={u:?} bound={bound} need={need} full={full}"
                    );
                }
            }
        }
        let mut iscratch = CommonNeighborScratch::new(g.num_items());
        for v in (0..g.num_items() as u32).map(ItemId) {
            for bound in 1..4u32 {
                let mut full = 0usize;
                for_each_item_common_neighbor(&view, v, &mut iscratch, |_, c| {
                    if c >= bound {
                        full += 1;
                    }
                });
                for need in 0..6usize {
                    assert_eq!(
                        item_has_qualified_neighbors(&view, v, bound, need, &mut iscratch),
                        full >= need,
                        "v={v:?} bound={bound} need={need} full={full}"
                    );
                }
            }
        }
    }

    #[test]
    fn qualified_test_leaves_scratch_reusable() {
        let g = sample();
        let view = GraphView::full(&g);
        let mut scratch = CommonNeighborScratch::new(g.num_users());
        assert!(user_has_qualified_neighbors(
            &view,
            UserId(0),
            2,
            1,
            &mut scratch
        ));
        // The early exit may leave counts dirty; the next full enumeration
        // with the SAME scratch must still be correct because it clears
        // first.
        let mut m = HashMap::new();
        for_each_user_common_neighbor(&view, UserId(0), &mut scratch, |o, c| {
            m.insert(o, c);
        });
        assert_eq!(m[&UserId(1)], 2);
        assert_eq!(m[&UserId(2)], 1);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = sample();
        let view = GraphView::full(&g);
        let mut scratch = CommonNeighborScratch::new(g.num_users());
        // Run twice with the same scratch: second result must be identical.
        let mut first = vec![];
        for_each_user_common_neighbor(&view, UserId(0), &mut scratch, |o, c| first.push((o, c)));
        let mut second = vec![];
        for_each_user_common_neighbor(&view, UserId(0), &mut scratch, |o, c| second.push((o, c)));
        first.sort();
        second.sort();
        assert_eq!(first, second);
    }
}
