//! Deletion-tolerant views over a [`BipartiteGraph`].
//!
//! The paper's Algorithm 3 (`CorePruning` / `SquarePruning`) repeatedly
//! removes vertices "and all adjacent edges" from the graph. Rebuilding the
//! CSR after each removal would be quadratic; a [`GraphView`] instead keeps
//! per-side alive bitmaps plus *live degrees* that are decremented as
//! neighbors disappear, making a removal `O(degree)` and degree queries
//! `O(1)`.
//!
//! Every removal is also appended to a **removal log** so incremental
//! consumers (the delta-driven fixpoint in `ricd-core`) can ask "what
//! disappeared since my last pass?" via [`GraphView::log_mark`] /
//! [`GraphView::removed_since`] and derive a dirty frontier from the answer
//! (see the `frontier` module). Restores do **not** rewind the log — it is a
//! record of removal events, not of the current alive set — so log-driven
//! consumers must not interleave restores with delta rounds.

use crate::graph::BipartiteGraph;
use crate::ids::{ItemId, UserId};

/// The query surface the pruning fixpoint and two-hop counters need from a
/// deletion-tolerant graph view: alive predicates, live degrees, and
/// alive-filtered **ascending** neighbor iteration.
///
/// Implemented by [`GraphView`] (dense tombstones over the weighted CSR)
/// and [`crate::compact::CompactView`] (alive bitmaps over the
/// delta-encoded compact CSR), so shard-local pruning runs unchanged on
/// either representation — and the differential suites can assert the two
/// agree. Methods take `impl FnMut` closures rather than returning
/// iterators so implementations stay monomorphized (no boxing on the hot
/// path); the trait is deliberately not object-safe.
pub trait NeighborView {
    /// Total user vertices (alive or dead).
    fn num_users(&self) -> usize;
    /// Total item vertices (alive or dead).
    fn num_items(&self) -> usize;
    /// True if user `u` has not been removed.
    fn user_alive(&self, u: UserId) -> bool;
    /// True if item `v` has not been removed.
    fn item_alive(&self, v: ItemId) -> bool;
    /// Degree of `u` counting only alive items; `0` if `u` is dead.
    fn user_degree(&self, u: UserId) -> usize;
    /// Degree of `v` counting only alive users; `0` if `v` is dead.
    fn item_degree(&self, v: ItemId) -> usize;
    /// Invokes `f` with each **alive** item adjacent to `u`, in ascending
    /// item-id order, stopping as soon as `f` returns `false`.
    fn for_each_user_neighbor_while(&self, u: UserId, f: impl FnMut(ItemId) -> bool);
    /// Invokes `f` with each **alive** user adjacent to `v`, in ascending
    /// user-id order, stopping as soon as `f` returns `false`.
    fn for_each_item_neighbor_while(&self, v: ItemId, f: impl FnMut(UserId) -> bool);

    /// Invokes `f` with each **alive** item adjacent to `u`, in ascending
    /// item-id order.
    fn for_each_user_neighbor(&self, u: UserId, mut f: impl FnMut(ItemId)) {
        self.for_each_user_neighbor_while(u, |v| {
            f(v);
            true
        });
    }

    /// Invokes `f` with each **alive** user adjacent to `v`, in ascending
    /// user-id order.
    fn for_each_item_neighbor(&self, v: ItemId, mut f: impl FnMut(UserId)) {
        self.for_each_item_neighbor_while(v, |u| {
            f(u);
            true
        });
    }
}

/// A position in a view's removal log: everything logged before the mark has
/// already been observed by the holder. Obtained from [`GraphView::log_mark`]
/// and consumed by [`GraphView::removed_since`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogMark {
    users: usize,
    items: usize,
}

/// A mutable "what's left" mask over an immutable [`BipartiteGraph`].
#[derive(Clone, Debug)]
pub struct GraphView<'g> {
    graph: &'g BipartiteGraph,
    user_alive: Vec<bool>,
    item_alive: Vec<bool>,
    user_live_degree: Vec<u32>,
    item_live_degree: Vec<u32>,
    alive_users: usize,
    alive_items: usize,
    removed_users_log: Vec<UserId>,
    removed_items_log: Vec<ItemId>,
}

impl<'g> GraphView<'g> {
    /// A view with every vertex alive.
    pub fn full(graph: &'g BipartiteGraph) -> Self {
        let user_live_degree = (0..graph.num_users() as u32)
            .map(|u| graph.user_degree(UserId(u)) as u32)
            .collect();
        let item_live_degree = (0..graph.num_items() as u32)
            .map(|v| graph.item_degree(ItemId(v)) as u32)
            .collect();
        Self {
            graph,
            user_alive: vec![true; graph.num_users()],
            item_alive: vec![true; graph.num_items()],
            user_live_degree,
            item_live_degree,
            alive_users: graph.num_users(),
            alive_items: graph.num_items(),
            removed_users_log: Vec::new(),
            removed_items_log: Vec::new(),
        }
    }

    /// A view restricted to the given vertex sets (used for seed expansion in
    /// Algorithm 2's `GraphGenerator`). Vertices outside the sets start dead.
    ///
    /// Live degrees are recomputed only over the supplied alive sets —
    /// `O(Σ deg)` over the alive vertices, not `O(V + E)` over the whole
    /// graph — because Algorithm 2 builds one restricted view *per seed* and
    /// seed neighborhoods are tiny next to the full click graph.
    pub fn restricted(
        graph: &'g BipartiteGraph,
        users: impl IntoIterator<Item = UserId>,
        items: impl IntoIterator<Item = ItemId>,
    ) -> Self {
        let mut view = Self {
            graph,
            user_alive: vec![false; graph.num_users()],
            item_alive: vec![false; graph.num_items()],
            user_live_degree: vec![0; graph.num_users()],
            item_live_degree: vec![0; graph.num_items()],
            alive_users: 0,
            alive_items: 0,
            removed_users_log: Vec::new(),
            removed_items_log: Vec::new(),
        };
        let mut alive_user_list = Vec::new();
        for u in users {
            if !view.user_alive[u.index()] {
                view.user_alive[u.index()] = true;
                view.alive_users += 1;
                alive_user_list.push(u);
            }
        }
        let mut alive_item_list = Vec::new();
        for v in items {
            if !view.item_alive[v.index()] {
                view.item_alive[v.index()] = true;
                view.alive_items += 1;
                alive_item_list.push(v);
            }
        }
        for u in alive_user_list {
            view.user_live_degree[u.index()] = graph
                .user_adjacency(u)
                .iter()
                .filter(|v| view.item_alive[v.index()])
                .count() as u32;
        }
        for v in alive_item_list {
            view.item_live_degree[v.index()] = graph
                .item_adjacency(v)
                .iter()
                .filter(|u| view.user_alive[u.index()])
                .count() as u32;
        }
        view
    }

    fn recompute_live_degrees(&mut self) {
        for u in 0..self.graph.num_users() as u32 {
            let u = UserId(u);
            self.user_live_degree[u.index()] = if self.user_alive[u.index()] {
                self.graph
                    .user_adjacency(u)
                    .iter()
                    .filter(|v| self.item_alive[v.index()])
                    .count() as u32
            } else {
                0
            };
        }
        for v in 0..self.graph.num_items() as u32 {
            let v = ItemId(v);
            self.item_live_degree[v.index()] = if self.item_alive[v.index()] {
                self.graph
                    .item_adjacency(v)
                    .iter()
                    .filter(|u| self.user_alive[u.index()])
                    .count() as u32
            } else {
                0
            };
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.graph
    }

    /// True if user `u` has not been removed.
    #[inline]
    pub fn user_alive(&self, u: UserId) -> bool {
        self.user_alive[u.index()]
    }

    /// True if item `v` has not been removed.
    #[inline]
    pub fn item_alive(&self, v: ItemId) -> bool {
        self.item_alive[v.index()]
    }

    /// Number of alive users.
    #[inline]
    pub fn alive_users(&self) -> usize {
        self.alive_users
    }

    /// Number of alive items.
    #[inline]
    pub fn alive_items(&self) -> usize {
        self.alive_items
    }

    /// Degree of `u` counting only alive items. `0` if `u` itself is dead.
    #[inline]
    pub fn user_degree(&self, u: UserId) -> usize {
        self.user_live_degree[u.index()] as usize
    }

    /// Degree of `v` counting only alive users. `0` if `v` itself is dead.
    #[inline]
    pub fn item_degree(&self, v: ItemId) -> usize {
        self.item_live_degree[v.index()] as usize
    }

    /// Alive items clicked by `u` with click counts.
    pub fn user_neighbors<'a>(&'a self, u: UserId) -> impl Iterator<Item = (ItemId, u32)> + 'a {
        self.graph
            .user_neighbors(u)
            .filter(move |(v, _)| self.item_alive[v.index()])
    }

    /// Alive users who clicked `v` with click counts.
    pub fn item_neighbors<'a>(&'a self, v: ItemId) -> impl Iterator<Item = (UserId, u32)> + 'a {
        self.graph
            .item_neighbors(v)
            .filter(move |(u, _)| self.user_alive[u.index()])
    }

    /// Iterator over alive users.
    pub fn users<'a>(&'a self) -> impl Iterator<Item = UserId> + 'a {
        (0..self.graph.num_users() as u32)
            .map(UserId)
            .filter(move |u| self.user_alive[u.index()])
    }

    /// Iterator over alive items.
    pub fn items<'a>(&'a self) -> impl Iterator<Item = ItemId> + 'a {
        (0..self.graph.num_items() as u32)
            .map(ItemId)
            .filter(move |v| self.item_alive[v.index()])
    }

    /// The current position in the removal log. Removals made after this
    /// call are visible through [`removed_since`](Self::removed_since).
    #[inline]
    pub fn log_mark(&self) -> LogMark {
        LogMark {
            users: self.removed_users_log.len(),
            items: self.removed_items_log.len(),
        }
    }

    /// The users and items removed since `mark`, in removal order.
    pub fn removed_since(&self, mark: LogMark) -> (&[UserId], &[ItemId]) {
        (
            &self.removed_users_log[mark.users..],
            &self.removed_items_log[mark.items..],
        )
    }

    /// Monotone change counter: the total number of removal events ever
    /// logged on this view (restores do not decrement it).
    #[inline]
    pub fn removal_epoch(&self) -> u64 {
        (self.removed_users_log.len() + self.removed_items_log.len()) as u64
    }

    /// Removes user `u` and all its incident edges. Idempotent.
    pub fn remove_user(&mut self, u: UserId) {
        if !self.user_alive[u.index()] {
            return;
        }
        self.removed_users_log.push(u);
        self.user_alive[u.index()] = false;
        self.alive_users -= 1;
        self.user_live_degree[u.index()] = 0;
        for v in self.graph.user_adjacency(u) {
            if self.item_alive[v.index()] {
                self.item_live_degree[v.index()] -= 1;
            }
        }
    }

    /// Removes item `v` and all its incident edges. Idempotent.
    pub fn remove_item(&mut self, v: ItemId) {
        if !self.item_alive[v.index()] {
            return;
        }
        self.removed_items_log.push(v);
        self.item_alive[v.index()] = false;
        self.alive_items -= 1;
        self.item_live_degree[v.index()] = 0;
        for u in self.graph.item_adjacency(v) {
            if self.user_alive[u.index()] {
                self.user_live_degree[u.index()] -= 1;
            }
        }
    }

    /// Re-adds a previously removed user (used by seed expansion). Recomputes
    /// its live degree and bumps neighbors' degrees.
    pub fn restore_user(&mut self, u: UserId) {
        if self.user_alive[u.index()] {
            return;
        }
        self.user_alive[u.index()] = true;
        self.alive_users += 1;
        let mut deg = 0;
        for v in self.graph.user_adjacency(u) {
            if self.item_alive[v.index()] {
                self.item_live_degree[v.index()] += 1;
                deg += 1;
            }
        }
        self.user_live_degree[u.index()] = deg;
    }

    /// Re-adds a previously removed item.
    pub fn restore_item(&mut self, v: ItemId) {
        if self.item_alive[v.index()] {
            return;
        }
        self.item_alive[v.index()] = true;
        self.alive_items += 1;
        let mut deg = 0;
        for u in self.graph.item_adjacency(v) {
            if self.user_alive[u.index()] {
                self.user_live_degree[u.index()] += 1;
                deg += 1;
            }
        }
        self.item_live_degree[v.index()] = deg;
    }

    /// Collects the alive vertex sets as sorted vectors.
    pub fn alive_sets(&self) -> (Vec<UserId>, Vec<ItemId>) {
        (self.users().collect(), self.items().collect())
    }

    /// Debug check: live degrees match a fresh recount. Intended for tests
    /// and assertions; costs a full recount.
    pub fn check_consistency(&self) -> bool {
        let mut clone = self.clone();
        clone.recompute_live_degrees();
        clone.user_live_degree == self.user_live_degree
            && clone.item_live_degree == self.item_live_degree
            && self.alive_users == self.user_alive.iter().filter(|&&a| a).count()
            && self.alive_items == self.item_alive.iter().filter(|&&a| a).count()
    }
}

impl NeighborView for GraphView<'_> {
    #[inline]
    fn num_users(&self) -> usize {
        self.graph.num_users()
    }
    #[inline]
    fn num_items(&self) -> usize {
        self.graph.num_items()
    }
    #[inline]
    fn user_alive(&self, u: UserId) -> bool {
        GraphView::user_alive(self, u)
    }
    #[inline]
    fn item_alive(&self, v: ItemId) -> bool {
        GraphView::item_alive(self, v)
    }
    #[inline]
    fn user_degree(&self, u: UserId) -> usize {
        GraphView::user_degree(self, u)
    }
    #[inline]
    fn item_degree(&self, v: ItemId) -> usize {
        GraphView::item_degree(self, v)
    }
    #[inline]
    fn for_each_user_neighbor_while(&self, u: UserId, mut f: impl FnMut(ItemId) -> bool) {
        for &v in self.graph.user_adjacency(u) {
            if self.item_alive[v.index()] && !f(v) {
                return;
            }
        }
    }
    #[inline]
    fn for_each_item_neighbor_while(&self, v: ItemId, mut f: impl FnMut(UserId) -> bool) {
        for &u in self.graph.item_adjacency(v) {
            if self.user_alive[u.index()] && !f(u) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn grid() -> BipartiteGraph {
        // 3 users x 3 items complete biclique, weight 1 each.
        let mut b = GraphBuilder::new();
        for u in 0..3 {
            for v in 0..3 {
                b.add_click(UserId(u), ItemId(v), 1);
            }
        }
        b.build()
    }

    #[test]
    fn full_view_matches_graph() {
        let g = grid();
        let view = GraphView::full(&g);
        assert_eq!(view.alive_users(), 3);
        assert_eq!(view.alive_items(), 3);
        assert_eq!(view.user_degree(UserId(0)), 3);
        assert!(view.check_consistency());
    }

    #[test]
    fn remove_user_updates_item_degrees() {
        let g = grid();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(1));
        assert_eq!(view.alive_users(), 2);
        assert_eq!(view.item_degree(ItemId(0)), 2);
        assert_eq!(view.user_degree(UserId(1)), 0);
        assert!(!view.user_alive(UserId(1)));
        assert!(view.check_consistency());
    }

    #[test]
    fn remove_is_idempotent() {
        let g = grid();
        let mut view = GraphView::full(&g);
        view.remove_item(ItemId(2));
        view.remove_item(ItemId(2));
        assert_eq!(view.alive_items(), 2);
        assert_eq!(view.user_degree(UserId(0)), 2);
        assert!(view.check_consistency());
    }

    #[test]
    fn restore_round_trips() {
        let g = grid();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(0));
        view.remove_item(ItemId(0));
        view.restore_user(UserId(0));
        view.restore_item(ItemId(0));
        assert_eq!(view.alive_users(), 3);
        assert_eq!(view.alive_items(), 3);
        assert_eq!(view.user_degree(UserId(0)), 3);
        assert_eq!(view.item_degree(ItemId(0)), 3);
        assert!(view.check_consistency());
    }

    #[test]
    fn restricted_view_starts_with_subset() {
        let g = grid();
        let view = GraphView::restricted(&g, [UserId(0), UserId(1)], [ItemId(0)]);
        assert_eq!(view.alive_users(), 2);
        assert_eq!(view.alive_items(), 1);
        assert_eq!(view.user_degree(UserId(0)), 1);
        assert_eq!(view.item_degree(ItemId(0)), 2);
        assert_eq!(view.user_degree(UserId(2)), 0);
        assert!(view.check_consistency());
    }

    #[test]
    fn restricted_view_with_empty_sets_is_fully_dead() {
        // The degenerate seed neighborhood: no vertices supplied. Every
        // vertex starts dead, every degree is zero, iteration yields
        // nothing, and the empty view is still internally consistent.
        let g = grid();
        let view = GraphView::restricted(&g, [], []);
        assert_eq!(view.alive_users(), 0);
        assert_eq!(view.alive_items(), 0);
        assert_eq!(view.users().count(), 0);
        assert_eq!(view.items().count(), 0);
        for u in 0..g.num_users() as u32 {
            assert!(!view.user_alive(UserId(u)));
            assert_eq!(view.user_degree(UserId(u)), 0);
        }
        for v in 0..g.num_items() as u32 {
            assert!(!view.item_alive(ItemId(v)));
            assert_eq!(view.item_degree(ItemId(v)), 0);
        }
        let (us, is) = view.alive_sets();
        assert!(us.is_empty() && is.is_empty());
        assert!(view.check_consistency());
    }

    #[test]
    fn neighbors_filter_dead_vertices() {
        let g = grid();
        let mut view = GraphView::full(&g);
        view.remove_item(ItemId(1));
        let n: Vec<_> = view.user_neighbors(UserId(0)).map(|(v, _)| v).collect();
        assert_eq!(n, vec![ItemId(0), ItemId(2)]);
    }

    #[test]
    fn alive_sets_sorted() {
        let g = grid();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(1));
        let (us, is) = view.alive_sets();
        assert_eq!(us, vec![UserId(0), UserId(2)]);
        assert_eq!(is, vec![ItemId(0), ItemId(1), ItemId(2)]);
    }

    #[test]
    fn removal_log_records_each_removal_once() {
        let g = grid();
        let mut view = GraphView::full(&g);
        assert_eq!(view.removal_epoch(), 0);
        let mark = view.log_mark();
        view.remove_user(UserId(1));
        view.remove_user(UserId(1)); // idempotent: must not double-log
        view.remove_item(ItemId(2));
        let (users, items) = view.removed_since(mark);
        assert_eq!(users, &[UserId(1)]);
        assert_eq!(items, &[ItemId(2)]);
        assert_eq!(view.removal_epoch(), 2);
    }

    #[test]
    fn log_mark_slices_suffix_only() {
        let g = grid();
        let mut view = GraphView::full(&g);
        view.remove_user(UserId(0));
        let mark = view.log_mark();
        view.remove_user(UserId(2));
        view.remove_item(ItemId(0));
        let (users, items) = view.removed_since(mark);
        assert_eq!(users, &[UserId(2)]);
        assert_eq!(items, &[ItemId(0)]);
    }

    #[test]
    fn restore_does_not_rewind_log() {
        let g = grid();
        let mut view = GraphView::full(&g);
        let mark = view.log_mark();
        view.remove_user(UserId(1));
        view.restore_user(UserId(1));
        let (users, items) = view.removed_since(mark);
        assert_eq!(users, &[UserId(1)]);
        assert!(items.is_empty());
        assert_eq!(view.removal_epoch(), 1);
    }
}
