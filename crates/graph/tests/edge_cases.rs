//! Edge-case coverage for [`GraphView`] and the two-hop machinery: the
//! empty graph, a side with a single vertex, and a maximum-degree hub that
//! connects everyone to everyone.

use ricd_graph::twohop::{
    for_each_item_common_neighbor, for_each_user_common_neighbor, item_two_hop_size,
    user_common_neighbors, user_two_hop_size, CommonNeighborScratch,
};
use ricd_graph::{BipartiteGraph, GraphBuilder, GraphView, ItemId, UserId};

fn star(items: u32) -> BipartiteGraph {
    // One user clicking `items` distinct items.
    let mut b = GraphBuilder::new();
    for v in 0..items {
        b.add_click(UserId(0), ItemId(v), 1);
    }
    b.build()
}

fn hub(users: u32) -> BipartiteGraph {
    // Item 0 is a hub clicked by every user; each user also has one
    // private item, so the hub has the maximum possible degree.
    let mut b = GraphBuilder::new();
    for u in 0..users {
        b.add_click(UserId(u), ItemId(0), 1);
        b.add_click(UserId(u), ItemId(u + 1), 1);
    }
    b.build()
}

#[test]
fn empty_graph_view_is_coherent() {
    let g = GraphBuilder::new().build();
    assert_eq!(g.num_users(), 0);
    assert_eq!(g.num_items(), 0);
    let view = GraphView::full(&g);
    assert_eq!(view.alive_users(), 0);
    assert_eq!(view.alive_items(), 0);
    assert_eq!(view.users().count(), 0);
    assert_eq!(view.items().count(), 0);
    let (us, is) = view.alive_sets();
    assert!(us.is_empty() && is.is_empty());
    assert!(view.check_consistency());
    // Zero-sized scratch is constructible even when there is nothing to
    // count over.
    let _ = CommonNeighborScratch::new(0);
}

#[test]
fn restricted_view_over_empty_sets_is_empty() {
    let g = hub(4);
    let view = GraphView::restricted(&g, [], []);
    assert_eq!(view.alive_users(), 0);
    assert_eq!(view.alive_items(), 0);
    assert_eq!(view.user_degree(UserId(0)), 0);
    assert!(view.check_consistency());
}

#[test]
fn single_user_side_has_no_user_neighbors() {
    let g = star(5);
    let view = GraphView::full(&g);
    let mut scratch = CommonNeighborScratch::new(g.num_users());
    let mut seen = 0;
    for_each_user_common_neighbor(&view, UserId(0), &mut scratch, |_, _| seen += 1);
    assert_eq!(seen, 0, "a lone user has no two-hop user neighbors");
    assert_eq!(user_two_hop_size(&view, UserId(0), &mut scratch), 0);
}

#[test]
fn single_user_side_items_all_share_that_user() {
    let g = star(5);
    let view = GraphView::full(&g);
    let mut scratch = CommonNeighborScratch::new(g.num_items());
    // Every pair of items shares exactly the one user.
    let mut counts = vec![];
    for_each_item_common_neighbor(&view, ItemId(0), &mut scratch, |o, c| counts.push((o, c)));
    assert_eq!(counts.len(), 4);
    assert!(counts.iter().all(|&(_, c)| c == 1));
    assert_eq!(item_two_hop_size(&view, ItemId(0), &mut scratch), 4);
}

#[test]
fn hub_connects_every_user_pair() {
    let n = 16u32;
    let g = hub(n);
    let view = GraphView::full(&g);
    assert_eq!(view.item_degree(ItemId(0)), n as usize);
    let mut scratch = CommonNeighborScratch::new(g.num_users());
    // Through the hub, user 0 reaches every other user with exactly one
    // shared item (the private items are private).
    let mut m = std::collections::HashMap::new();
    for_each_user_common_neighbor(&view, UserId(0), &mut scratch, |o, c| {
        m.insert(o, c);
    });
    assert_eq!(m.len(), (n - 1) as usize);
    for u in 1..n {
        assert_eq!(m[&UserId(u)], 1);
        assert_eq!(user_common_neighbors(&view, UserId(0), UserId(u)), 1);
    }
}

#[test]
fn removing_the_hub_disconnects_the_graph() {
    let n = 8u32;
    let g = hub(n);
    let mut view = GraphView::full(&g);
    view.remove_item(ItemId(0));
    assert!(view.check_consistency());
    let mut scratch = CommonNeighborScratch::new(g.num_users());
    for u in 0..n {
        assert_eq!(
            user_two_hop_size(&view, UserId(u), &mut scratch),
            0,
            "user {u} still reaches someone without the hub"
        );
        assert_eq!(view.user_degree(UserId(u)), 1, "only the private item left");
    }
}

#[test]
fn draining_and_restoring_every_vertex_round_trips() {
    let g = hub(6);
    let mut view = GraphView::full(&g);
    let (users, items) = view.alive_sets();
    for &u in &users {
        view.remove_user(u);
    }
    for &v in &items {
        view.remove_item(v);
    }
    assert_eq!(view.alive_users(), 0);
    assert_eq!(view.alive_items(), 0);
    assert!(view.check_consistency());
    for &v in &items {
        view.restore_item(v);
    }
    for &u in &users {
        view.restore_user(u);
    }
    assert_eq!(view.alive_users(), users.len());
    assert_eq!(view.alive_items(), items.len());
    assert_eq!(view.item_degree(ItemId(0)), 6);
    assert!(view.check_consistency());
}
