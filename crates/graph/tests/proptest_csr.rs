//! Differential property tests for the compact CSR (`ricd_graph::compact`).
//!
//! The compact representation — varint delta-encoded sorted adjacency plus
//! alive bitmaps — replaces the dense `BipartiteGraph`/`GraphView` pair on
//! the shard-local pruning path, so any divergence between the two is a
//! detection-output bug. These properties drive both representations
//! through identical construction + removal sequences and assert they
//! agree on everything the pruning fixpoint observes: alive sets, live
//! degrees, and alive-filtered ascending adjacency iteration.

use proptest::prelude::*;
use ricd_graph::{
    CompactBigraph, CompactSubgraph, CompactView, DeltaAdjacency, GraphBuilder, GraphView,
    InducedSubgraph, ItemId, NeighborView, UserId,
};

/// Random click records over id spaces that straddle the 64-bit bitmap
/// word boundary on both sides (users up to ~2 words, items ~1 word).
fn records() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..130, 0u32..70, 1u32..20), 0..300)
}

/// Interleaved removal sequence: `(is_user, id)` pairs, including ids that
/// may repeat (removals must be idempotent on both representations).
fn removals() -> impl Strategy<Value = Vec<(bool, u32)>> {
    proptest::collection::vec((any::<bool>(), 0u32..130), 0..120)
}

/// Builds a world whose vertex-count floors force empty-adjacency vertices
/// (reserved ids above every clicked id) and exact word-boundary sizes.
fn build(records: &[(u32, u32, u32)], reserve: (usize, usize)) -> ricd_graph::BipartiteGraph {
    let mut b = GraphBuilder::new();
    b.reserve_users(reserve.0);
    b.reserve_items(reserve.1);
    for &(u, v, c) in records {
        b.add_click(UserId(u), ItemId(v), c);
    }
    b.build()
}

/// Asserts both views agree on every observable the pruning path reads.
fn assert_views_agree(dense: &GraphView<'_>, compact: &CompactView<'_>) {
    assert_eq!(
        compact.alive_users(),
        dense.alive_users(),
        "alive user count"
    );
    assert_eq!(
        compact.alive_items(),
        dense.alive_items(),
        "alive item count"
    );
    let num_users = NeighborView::num_users(dense);
    let num_items = NeighborView::num_items(dense);
    assert_eq!(NeighborView::num_users(compact), num_users);
    assert_eq!(NeighborView::num_items(compact), num_items);
    for u in (0..num_users as u32).map(UserId) {
        assert_eq!(
            NeighborView::user_alive(compact, u),
            NeighborView::user_alive(dense, u),
            "user {u} alive"
        );
        assert_eq!(
            NeighborView::user_degree(compact, u),
            NeighborView::user_degree(dense, u),
            "user {u} degree"
        );
        let mut dense_adj = Vec::new();
        NeighborView::for_each_user_neighbor(dense, u, |v| dense_adj.push(v));
        let mut compact_adj = Vec::new();
        NeighborView::for_each_user_neighbor(compact, u, |v| compact_adj.push(v));
        assert_eq!(compact_adj, dense_adj, "user {u} adjacency");
        let mut sorted = dense_adj.clone();
        sorted.sort_unstable();
        assert_eq!(dense_adj, sorted, "user {u} adjacency must be ascending");
    }
    for v in (0..num_items as u32).map(ItemId) {
        assert_eq!(
            NeighborView::item_alive(compact, v),
            NeighborView::item_alive(dense, v),
            "item {v} alive"
        );
        assert_eq!(
            NeighborView::item_degree(compact, v),
            NeighborView::item_degree(dense, v),
            "item {v} degree"
        );
        let mut dense_adj = Vec::new();
        NeighborView::for_each_item_neighbor(dense, v, |u| dense_adj.push(u));
        let mut compact_adj = Vec::new();
        NeighborView::for_each_item_neighbor(compact, v, |u| compact_adj.push(u));
        assert_eq!(compact_adj, dense_adj, "item {v} adjacency");
    }
    // The alive iterators drive component discovery; they must agree too.
    let (du, di) = dense.alive_sets();
    let (cu, ci) = compact.alive_sets();
    assert_eq!(cu, du, "alive user sets");
    assert_eq!(ci, di, "alive item sets");
}

proptest! {
    /// After any interleaved removal sequence (with repeats), the compact
    /// view agrees with the dense view on alive sets, degrees, and
    /// ascending alive-filtered adjacency — for worlds spanning bitmap
    /// word boundaries and containing empty-adjacency vertices.
    #[test]
    fn compact_view_tracks_graph_view(recs in records(),
                                      kills in removals(),
                                      reserve_users in 0usize..130,
                                      reserve_items in 0usize..70) {
        let g = build(&recs, (reserve_users, reserve_items));
        let c = CompactBigraph::from_graph(&g);
        let mut dense = GraphView::full(&g);
        let mut compact = CompactView::full(&c);
        assert_views_agree(&dense, &compact);
        for (i, &(is_user, id)) in kills.iter().enumerate() {
            if is_user {
                if (id as usize) < g.num_users() {
                    dense.remove_user(UserId(id));
                    compact.remove_user(UserId(id));
                }
            } else if (id as usize) < g.num_items() {
                dense.remove_item(ItemId(id));
                compact.remove_item(ItemId(id));
            }
            // Spot-check mid-sequence every few removals, full check at end.
            if i % 16 == 0 {
                prop_assert_eq!(compact.alive_users(), dense.alive_users());
                prop_assert_eq!(compact.alive_items(), dense.alive_items());
            }
        }
        assert_views_agree(&dense, &compact);
        prop_assert!(compact.check_consistency());
        prop_assert!(dense.check_consistency());
    }

    /// Word-boundary worlds: exactly n*64±1 vertices, everything removed
    /// then the boundary vertex probed — the off-by-one regime for the
    /// packed bitmap.
    #[test]
    fn bitmap_word_boundary_worlds(extra in 0usize..3, kill_all in any::<bool>()) {
        for base in [63usize, 64, 65, 127, 128] {
            let n = base + extra;
            let mut b = GraphBuilder::new();
            b.reserve_users(n);
            b.reserve_items(n);
            // One diagonal edge per vertex pair so degrees are 1.
            for i in 0..n as u32 {
                b.add_click(UserId(i), ItemId(i), 1);
            }
            let g = b.build();
            let c = CompactBigraph::from_graph(&g);
            let mut dense = GraphView::full(&g);
            let mut compact = CompactView::full(&c);
            if kill_all {
                for i in 0..n as u32 {
                    dense.remove_user(UserId(i));
                    compact.remove_user(UserId(i));
                }
            } else {
                // Kill only the word-boundary stragglers.
                for i in [0usize, 62, 63, 64, n - 1] {
                    if i < n {
                        dense.remove_user(UserId(i as u32));
                        compact.remove_user(UserId(i as u32));
                    }
                }
            }
            assert_views_agree(&dense, &compact);
        }
    }

    /// The compact induced subgraph agrees with the dense one: same vertex
    /// maps and the same local adjacency, for arbitrary (duplicated,
    /// unsorted) scope sets.
    #[test]
    fn compact_subgraph_matches_induced_subgraph(
        recs in records(),
        users in proptest::collection::vec(0u32..130, 0..80),
        items in proptest::collection::vec(0u32..70, 0..50),
    ) {
        let g = build(&recs, (0, 0));
        let users: Vec<UserId> = users.into_iter()
            .filter(|&u| (u as usize) < g.num_users()).map(UserId).collect();
        let items: Vec<ItemId> = items.into_iter()
            .filter(|&v| (v as usize) < g.num_items()).map(ItemId).collect();
        let dense = InducedSubgraph::extract(&g, users.iter().copied(), items.iter().copied());
        let compact = CompactSubgraph::extract(&g, users.iter().copied(), items.iter().copied());
        prop_assert_eq!(&compact.user_map, &dense.user_map);
        prop_assert_eq!(&compact.item_map, &dense.item_map);
        for lu in (0..dense.graph.num_users() as u32).map(UserId) {
            let mut got = Vec::new();
            compact.graph.for_each_user_neighbor(lu, |v| got.push(v));
            prop_assert_eq!(got, dense.graph.user_adjacency(lu).to_vec());
        }
        for lv in (0..dense.graph.num_items() as u32).map(ItemId) {
            let mut got = Vec::new();
            compact.graph.for_each_item_neighbor(lv, |u| got.push(u));
            prop_assert_eq!(got, dense.graph.item_adjacency(lv).to_vec());
        }
    }

    /// Delta round-trip: encoding arbitrary strictly-increasing lists and
    /// decoding them is the identity; non-sorted input is rejected.
    #[test]
    fn delta_adjacency_round_trip(lists in proptest::collection::vec(
        proptest::collection::btree_set(0u32..10_000, 0..50), 0..20))
    {
        let lists: Vec<Vec<u32>> = lists.into_iter().map(|s| s.into_iter().collect()).collect();
        let adj = DeltaAdjacency::from_lists(lists.iter().map(|l| l.as_slice()), 10_000).unwrap();
        prop_assert_eq!(adj.vertices(), lists.len());
        let mut out = Vec::new();
        for (i, want) in lists.iter().enumerate() {
            prop_assert_eq!(adj.degree(i) as usize, want.len());
            adj.decode_into(i, &mut out);
            prop_assert_eq!(&out, want);
        }
        // Any list with an injected duplicate or inversion must be rejected.
        for (i, l) in lists.iter().enumerate() {
            if let Some(&first) = l.first() {
                let mut bad = l.clone();
                bad.insert(0, first); // duplicate head
                let mut all: Vec<&[u32]> = lists.iter().map(|x| x.as_slice()).collect();
                all[i] = &bad;
                prop_assert!(DeltaAdjacency::from_lists(all, 10_000).is_err());
                break;
            }
        }
    }
}

/// Degenerate world: every vertex has empty adjacency (pure reservations).
/// Both representations must agree that everything is alive with degree 0,
/// and removals still mirror.
#[test]
fn all_isolated_vertices_agree() {
    let mut b = GraphBuilder::new();
    b.reserve_users(129);
    b.reserve_items(65);
    let g = b.build();
    let c = CompactBigraph::from_graph(&g);
    let mut dense = GraphView::full(&g);
    let mut compact = CompactView::full(&c);
    assert_views_agree(&dense, &compact);
    for u in [0u32, 64, 128] {
        dense.remove_user(UserId(u));
        compact.remove_user(UserId(u));
    }
    for v in [0u32, 63, 64] {
        dense.remove_item(ItemId(v));
        compact.remove_item(ItemId(v));
    }
    assert_views_agree(&dense, &compact);
    assert!(compact.check_consistency());
}

/// The compact encoding must actually be smaller than the dense layout it
/// replaces on a realistic dense-id subgraph.
#[test]
fn compact_is_smaller_than_dense_layout() {
    let mut b = GraphBuilder::new();
    for u in 0..200u32 {
        for v in 0..40u32 {
            b.add_click(UserId(u), ItemId((u + v) % 80), 1);
        }
    }
    let g = b.build();
    let c = CompactBigraph::from_graph(&g);
    // Dense CSR stores each edge twice as (id: 4B + clicks: 4B) plus
    // offsets; the compact form must undercut just the id payload.
    let dense_id_bytes = g.num_edges() * 2 * 4;
    assert!(
        c.heap_bytes() < dense_id_bytes,
        "compact {} bytes >= dense id payload {} bytes",
        c.heap_bytes(),
        dense_id_bytes
    );
}
