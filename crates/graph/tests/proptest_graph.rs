//! Property-based tests for the bipartite-graph substrate.

use proptest::prelude::*;
use ricd_graph::{
    components::connected_components,
    io,
    twohop::{self, CommonNeighborScratch},
    GraphBuilder, GraphView, ItemId, UserId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Strategy: a random multiset of click records over small id spaces.
fn records() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..40, 0u32..30, 1u32..20), 0..200)
}

fn build(records: &[(u32, u32, u32)]) -> ricd_graph::BipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, c) in records {
        b.add_click(UserId(u), ItemId(v), c);
    }
    b.build()
}

proptest! {
    /// The CSR invariants hold for any input multiset.
    #[test]
    fn built_graph_is_valid(recs in records()) {
        let g = build(&recs);
        prop_assert!(g.validate().is_ok());
    }

    /// Builder merge semantics equal a reference BTreeMap accumulation.
    #[test]
    fn builder_matches_reference_model(recs in records()) {
        let g = build(&recs);
        let mut model: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for &(u, v, c) in &recs {
            *model.entry((u, v)).or_default() += c as u64;
        }
        prop_assert_eq!(g.num_edges(), model.len());
        for (&(u, v), &c) in &model {
            prop_assert_eq!(g.clicks(UserId(u), ItemId(v)).map(u64::from), Some(c));
        }
        let total: u64 = model.values().sum();
        prop_assert_eq!(g.total_clicks(), total);
    }

    /// Row sums equal column sums equal total clicks.
    #[test]
    fn totals_are_consistent(recs in records()) {
        let g = build(&recs);
        let by_user: u64 = g.all_user_total_clicks().iter().sum();
        let by_item: u64 = g.all_item_total_clicks().iter().sum();
        prop_assert_eq!(by_user, g.total_clicks());
        prop_assert_eq!(by_item, g.total_clicks());
    }

    /// TSV and binary serialization round-trip the edge multiset.
    #[test]
    fn serialization_round_trips(recs in records()) {
        let g = build(&recs);
        let mut tsv = Vec::new();
        io::write_tsv(&g, &mut tsv).unwrap();
        let g_tsv = io::read_tsv(tsv.as_slice()).unwrap();
        prop_assert_eq!(g_tsv.num_edges(), g.num_edges());
        prop_assert_eq!(g_tsv.total_clicks(), g.total_clicks());

        let g_bin = io::from_bytes(io::to_bytes(&g)).unwrap();
        prop_assert_eq!(g_bin.num_users(), g.num_users());
        prop_assert_eq!(g_bin.num_items(), g.num_items());
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = g_bin.edges().collect();
        prop_assert_eq!(a, b);
    }

    /// After arbitrary removals, live degrees match a naive recount.
    #[test]
    fn view_degrees_match_recount(recs in records(),
                                  dead_users in proptest::collection::btree_set(0u32..40, 0..20),
                                  dead_items in proptest::collection::btree_set(0u32..30, 0..15)) {
        let g = build(&recs);
        let mut view = GraphView::full(&g);
        for &u in &dead_users {
            if (u as usize) < g.num_users() {
                view.remove_user(UserId(u));
            }
        }
        for &v in &dead_items {
            if (v as usize) < g.num_items() {
                view.remove_item(ItemId(v));
            }
        }
        prop_assert!(view.check_consistency());
        for u in view.users() {
            let recount = g.user_adjacency(u).iter().filter(|v| view.item_alive(**v)).count();
            prop_assert_eq!(view.user_degree(u), recount);
        }
    }

    /// Wedge-based common-neighbor counts equal the merge-based exact count.
    #[test]
    fn wedge_counts_match_exact(recs in records()) {
        let g = build(&recs);
        let view = GraphView::full(&g);
        let mut scratch = CommonNeighborScratch::new(g.num_users());
        for u in g.users().take(10) {
            twohop::for_each_user_common_neighbor(&view, u, &mut scratch, |other, count| {
                assert_eq!(count, twohop::user_common_neighbors(&view, u, other),
                           "mismatch for {u} vs {other}");
            });
        }
    }

    /// Components partition the alive vertex set.
    #[test]
    fn components_partition_vertices(recs in records()) {
        let g = build(&recs);
        let view = GraphView::full(&g);
        let comps = connected_components(&view);
        let mut users = BTreeSet::new();
        let mut items = BTreeSet::new();
        for c in &comps {
            for &u in &c.users {
                prop_assert!(users.insert(u), "user in two components");
            }
            for &v in &c.items {
                prop_assert!(items.insert(v), "item in two components");
            }
        }
        prop_assert_eq!(users.len(), g.num_users());
        prop_assert_eq!(items.len(), g.num_items());
    }

    /// Lossy TSV reads recover exactly the clean-subset graph and report
    /// every malformed line, in order, with nothing dropped silently.
    #[test]
    fn lossy_read_partitions_lines(recs in records(),
                                   bad_at in proptest::collection::btree_set(0usize..64, 0..12),
                                   junk_pick in 0usize..4) {
        let junk = ["garbage", "1\t2", "x\t0\t1", "0\t0\t99999999999"][junk_pick];
        // Interleave clean records with malformed lines at chosen slots.
        let mut text = String::new();
        let mut clean = Vec::new();
        let mut expected_bad = Vec::new();
        let mut line_no = 0usize;
        for (i, &(u, v, c)) in recs.iter().enumerate() {
            if bad_at.contains(&i) {
                line_no += 1;
                text.push_str(junk);
                text.push('\n');
                expected_bad.push(line_no);
            }
            line_no += 1;
            text.push_str(&format!("{u}\t{v}\t{c}\n"));
            clean.push((u, v, c));
        }
        let lossy = io::read_tsv_lossy(text.as_bytes()).unwrap();
        let reference = build(&clean);
        prop_assert_eq!(lossy.graph.num_edges(), reference.num_edges());
        prop_assert_eq!(lossy.graph.total_clicks(), reference.total_clicks());
        let reported: Vec<usize> = lossy.errors.iter().map(|e| e.line).collect();
        prop_assert_eq!(reported, expected_bad);
        // Strict read agrees whenever there is nothing to quarantine.
        if expected_bad.is_empty() {
            prop_assert!(io::read_tsv(text.as_bytes()).is_ok());
        } else {
            prop_assert!(io::read_tsv(text.as_bytes()).is_err());
        }
    }

    /// Every edge stays inside one component.
    #[test]
    fn edges_do_not_cross_components(recs in records()) {
        let g = build(&recs);
        let view = GraphView::full(&g);
        let comps = connected_components(&view);
        let mut user_comp = vec![usize::MAX; g.num_users()];
        for (i, c) in comps.iter().enumerate() {
            for &u in &c.users {
                user_comp[u.index()] = i;
            }
        }
        let mut item_comp = vec![usize::MAX; g.num_items()];
        for (i, c) in comps.iter().enumerate() {
            for &v in &c.items {
                item_comp[v.index()] = i;
            }
        }
        for (u, v, _) in g.edges() {
            prop_assert_eq!(user_comp[u.index()], item_comp[v.index()]);
        }
    }
}
