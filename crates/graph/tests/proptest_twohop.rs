//! Differential property tests for the three two-hop survival kernels:
//! the wedge-accumulation counter (the reference), the sorted-intersection
//! counter, and the cache-blocked SWAR kernel
//! (`twohop::blocked_*_has_qualified_neighbors`).
//!
//! The pruning fixpoints dispatch every SquarePruning removal decision to
//! one of these kernels per anchor; the wedge test is the semantic
//! reference, kept precisely so these properties can assert all three
//! always agree — on random graphs, on both graph representations, under
//! stale hub registries (built before removals), with empty registries,
//! and on the adversarial shapes where each kernel's strategy goes wrong
//! (star hubs that trigger galloping, degree-1 chains with nothing to
//! intersect, candidate sets straddling 64-bit word boundaries).

use proptest::prelude::*;
use ricd_graph::{
    twohop::{
        blocked_item_has_qualified_neighbors, blocked_user_has_qualified_neighbors,
        item_has_qualified_neighbors, item_has_qualified_neighbors_sorted,
        user_has_qualified_neighbors, user_has_qualified_neighbors_sorted, CommonNeighborScratch,
        HubBitmaps, KernelScratch, SortedNeighborScratch,
    },
    CompactBigraph, CompactView, DeltaAdjacency, GraphBuilder, GraphView, ItemId, NeighborView,
    UserId,
};

fn records() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..50, 0u32..35, 1u32..10), 0..250)
}

fn build(records: &[(u32, u32, u32)]) -> ricd_graph::BipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, c) in records {
        b.add_click(UserId(u), ItemId(v), c);
    }
    b.build()
}

/// Exhaustively compares the sorted and wedge tests over every vertex and
/// a grid of (bound, need) parameters on one view.
fn assert_counters_agree(view: &GraphView<'_>, bounds: std::ops::Range<u32>) {
    let g = view.graph();
    let mut wedge_u = CommonNeighborScratch::new(g.num_users());
    let mut sorted_u = SortedNeighborScratch::new(g.num_users());
    for u in (0..g.num_users() as u32).map(UserId) {
        for bound in bounds.clone() {
            for need in 0..5usize {
                assert_eq!(
                    user_has_qualified_neighbors_sorted(view, u, bound, need, &mut sorted_u),
                    user_has_qualified_neighbors(view, u, bound, need, &mut wedge_u),
                    "user {u} bound={bound} need={need}"
                );
            }
        }
    }
    let mut wedge_i = CommonNeighborScratch::new(g.num_items());
    let mut sorted_i = SortedNeighborScratch::new(g.num_items());
    for v in (0..g.num_items() as u32).map(ItemId) {
        for bound in bounds.clone() {
            for need in 0..5usize {
                assert_eq!(
                    item_has_qualified_neighbors_sorted(view, v, bound, need, &mut sorted_i),
                    item_has_qualified_neighbors(view, v, bound, need, &mut wedge_i),
                    "item {v} bound={bound} need={need}"
                );
            }
        }
    }
}

proptest! {
    /// The sorted-intersection test equals the wedge test on random
    /// graphs, before and after random removals.
    #[test]
    fn sorted_equals_wedge_on_random_graphs(
        recs in records(),
        dead_users in proptest::collection::btree_set(0u32..50, 0..15),
        dead_items in proptest::collection::btree_set(0u32..35, 0..10),
    ) {
        let g = build(&recs);
        let mut view = GraphView::full(&g);
        assert_counters_agree(&view, 0..4);
        for &u in &dead_users {
            if (u as usize) < g.num_users() {
                view.remove_user(UserId(u));
            }
        }
        for &v in &dead_items {
            if (v as usize) < g.num_items() {
                view.remove_item(ItemId(v));
            }
        }
        assert_counters_agree(&view, 0..4);
    }

    /// Representation independence: on the same world, the sorted test
    /// answers identically over the dense `GraphView` and the compact
    /// `CompactView` — including after mirrored removals.
    #[test]
    fn sorted_counter_agrees_across_representations(
        recs in records(),
        kills in proptest::collection::vec((any::<bool>(), 0u32..50), 0..40),
    ) {
        let g = build(&recs);
        let c = CompactBigraph::from_graph(&g);
        let mut dense = GraphView::full(&g);
        let mut compact = CompactView::full(&c);
        for &(is_user, id) in &kills {
            if is_user {
                if (id as usize) < g.num_users() {
                    dense.remove_user(UserId(id));
                    compact.remove_user(UserId(id));
                }
            } else if (id as usize) < g.num_items() {
                dense.remove_item(ItemId(id));
                compact.remove_item(ItemId(id));
            }
        }
        let mut s1 = SortedNeighborScratch::new(g.num_users());
        let mut s2 = SortedNeighborScratch::new(g.num_users());
        for u in (0..g.num_users() as u32).map(UserId) {
            for bound in 0..3u32 {
                for need in 0..4usize {
                    prop_assert_eq!(
                        user_has_qualified_neighbors_sorted(&dense, u, bound, need, &mut s1),
                        user_has_qualified_neighbors_sorted(&compact, u, bound, need, &mut s2),
                        "user {} bound={} need={}", u, bound, need
                    );
                }
            }
        }
    }

    /// Star hubs: one ultra-popular item shared by every user forces the
    /// skewed-degree regime where galloping (not two-pointer merging)
    /// decides intersections; leaf users have nothing else in common.
    #[test]
    fn star_hub_worlds(hub_users in 20u32..80, clique in 2u32..6) {
        let mut b = GraphBuilder::new();
        for u in 0..hub_users {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        // A small clique of users sharing `clique` private items each.
        for u in 0..4u32 {
            for v in 0..clique {
                b.add_click(UserId(u), ItemId(1 + v), 1);
            }
        }
        // Degree-1 chain stragglers: user i clicks only private item i.
        for i in 0..10u32 {
            b.add_click(UserId(hub_users + i), ItemId(100 + i), 1);
        }
        let g = b.build();
        let view = GraphView::full(&g);
        assert_counters_agree(&view, 0..5);
        // And with the hub removed, the skew collapses; still identical.
        let mut view = view;
        view.remove_item(ItemId(0));
        assert_counters_agree(&view, 0..5);
    }

    /// Sorted-invariant violations are rejected at construction, not
    /// silently mis-encoded: any adjacency list with a duplicate or an
    /// inversion fails `DeltaAdjacency::from_lists`.
    #[test]
    fn unsorted_adjacency_rejected(ids in proptest::collection::vec(0u32..100, 2..30),
                                   dup_at in 0usize..28) {
        let mut sorted: Vec<u32> = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        // A valid strictly-increasing list encodes fine.
        let ok = [sorted.as_slice()];
        prop_assert!(DeltaAdjacency::from_lists(ok, 100).is_ok());
        if sorted.len() >= 2 {
            // Duplicate injection.
            let mut dup = sorted.clone();
            let at = dup_at % (dup.len() - 1);
            dup.insert(at, dup[at]);
            prop_assert!(DeltaAdjacency::from_lists([dup.as_slice()], 100).is_err());
            // Inversion injection.
            let mut inv = sorted.clone();
            inv.swap(0, sorted.len() - 1);
            prop_assert!(DeltaAdjacency::from_lists([inv.as_slice()], 100).is_err());
        }
        // Out-of-range neighbor id.
        let oob = [&[100u32][..]];
        prop_assert!(DeltaAdjacency::from_lists(oob, 100).is_err());
    }
}

/// Exhaustively compares all three kernels over every vertex of any view
/// under a given (possibly stale, possibly empty) hub registry. The wedge
/// kernel is the reference; sorted and blocked must match it bit for bit.
fn assert_three_way_agree<V: NeighborView>(
    view: &V,
    hubs: &HubBitmaps,
    bounds: std::ops::Range<u32>,
    needs: std::ops::Range<usize>,
) {
    let mut wedge_u = CommonNeighborScratch::new(view.num_users());
    let mut sorted_u = SortedNeighborScratch::new(view.num_users());
    let mut ks_u = KernelScratch::new(view.num_users());
    for u in (0..view.num_users() as u32).map(UserId) {
        for bound in bounds.clone() {
            for need in needs.clone() {
                let want = user_has_qualified_neighbors(view, u, bound, need, &mut wedge_u);
                assert_eq!(
                    blocked_user_has_qualified_neighbors(view, hubs, u, bound, need, &mut ks_u),
                    want,
                    "blocked: user {u} bound={bound} need={need}"
                );
                assert_eq!(
                    user_has_qualified_neighbors_sorted(view, u, bound, need, &mut sorted_u),
                    want,
                    "sorted: user {u} bound={bound} need={need}"
                );
            }
        }
    }
    let mut wedge_i = CommonNeighborScratch::new(view.num_items());
    let mut sorted_i = SortedNeighborScratch::new(view.num_items());
    let mut ks_i = KernelScratch::new(view.num_items());
    for v in (0..view.num_items() as u32).map(ItemId) {
        for bound in bounds.clone() {
            for need in needs.clone() {
                let want = item_has_qualified_neighbors(view, v, bound, need, &mut wedge_i);
                assert_eq!(
                    blocked_item_has_qualified_neighbors(view, hubs, v, bound, need, &mut ks_i),
                    want,
                    "blocked: item {v} bound={bound} need={need}"
                );
                assert_eq!(
                    item_has_qualified_neighbors_sorted(view, v, bound, need, &mut sorted_i),
                    want,
                    "sorted: item {v} bound={bound} need={need}"
                );
            }
        }
    }
}

proptest! {
    /// Three-way agreement on random graphs, across the registry spectrum:
    /// `hub_min = 1` (almost everything is a hub), `4` (a realistic
    /// hot-vertex floor), and `1000` (an *empty* registry — the blocked
    /// kernel must stream adjacency instead of ANDing bitmaps).
    #[test]
    fn blocked_equals_wedge_and_sorted_on_random_graphs(
        recs in records(),
        hub_min_idx in 0usize..3,
    ) {
        let hub_min = [1u32, 4, 1000][hub_min_idx];
        let g = build(&recs);
        let view = GraphView::full(&g);
        let hubs = HubBitmaps::build(&view, hub_min, 64);
        assert_three_way_agree(&view, &hubs, 0..4, 0..5);
    }

    /// Hub staleness soundness: the registry is built on the *full* view,
    /// then vertices are removed. Removals are monotone, so the stale
    /// bitmaps must keep answering exactly — including when the removals
    /// wipe out every hub vertex itself (mass-removal regime).
    #[test]
    fn stale_hub_registry_stays_exact_under_removals(
        recs in records(),
        dead_users in proptest::collection::btree_set(0u32..50, 0..30),
        dead_items in proptest::collection::btree_set(0u32..35, 0..20),
        hub_min_idx in 0usize..2,
    ) {
        let hub_min = [1u32, 4][hub_min_idx];
        let g = build(&recs);
        let mut view = GraphView::full(&g);
        let hubs = HubBitmaps::build(&view, hub_min, 64);
        for &u in &dead_users {
            if (u as usize) < g.num_users() {
                view.remove_user(UserId(u));
            }
        }
        for &v in &dead_items {
            if (v as usize) < g.num_items() {
                view.remove_item(ItemId(v));
            }
        }
        assert_three_way_agree(&view, &hubs, 0..4, 0..5);
        // A registry rebuilt after the mass removal may be empty; the
        // blocked kernel must degrade to adjacency streaming and agree.
        let rebuilt = HubBitmaps::build(&view, 1000, 64);
        prop_assert_eq!(rebuilt.item_hub_count(), 0);
        prop_assert_eq!(rebuilt.user_hub_count(), 0);
        assert_three_way_agree(&view, &rebuilt, 0..4, 0..5);
    }

    /// Representation independence for the blocked kernel: identical
    /// answers over the dense `GraphView` and the compact `CompactView`
    /// after mirrored removals, with each view's own registry.
    #[test]
    fn blocked_kernel_agrees_across_representations(
        recs in records(),
        kills in proptest::collection::vec((any::<bool>(), 0u32..50), 0..40),
    ) {
        let g = build(&recs);
        let c = CompactBigraph::from_graph(&g);
        let mut dense = GraphView::full(&g);
        let mut compact = CompactView::full(&c);
        for &(is_user, id) in &kills {
            if is_user {
                if (id as usize) < g.num_users() {
                    dense.remove_user(UserId(id));
                    compact.remove_user(UserId(id));
                }
            } else if (id as usize) < g.num_items() {
                dense.remove_item(ItemId(id));
                compact.remove_item(ItemId(id));
            }
        }
        let hubs_d = HubBitmaps::build(&dense, 2, 64);
        let hubs_c = HubBitmaps::build(&compact, 2, 64);
        let mut k1 = KernelScratch::new(g.num_users());
        let mut k2 = KernelScratch::new(g.num_users());
        for u in (0..g.num_users() as u32).map(UserId) {
            for bound in 0..3u32 {
                for need in 0..4usize {
                    prop_assert_eq!(
                        blocked_user_has_qualified_neighbors(&dense, &hubs_d, u, bound, need, &mut k1),
                        blocked_user_has_qualified_neighbors(&compact, &hubs_c, u, bound, need, &mut k2),
                        "user {} bound={} need={}", u, bound, need
                    );
                }
            }
        }
    }
}

/// Candidate sets straddling u64 word boundaries: one hub item clicked by
/// 64k−1, 64k, and 64k+1 users. The anchor's partner count lands exactly
/// at the last bit of the last word (and one past it), so any off-by-one
/// in the word-chunked AND+popcount loop flips the `need`-at-the-bound
/// answer.
#[test]
fn blocked_kernel_exact_at_word_boundary_populations() {
    for extra in [-1i64, 0, 1] {
        let n_users = (65_536i64 + extra) as u32;
        let mut b = GraphBuilder::new();
        for u in 0..n_users {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        let g = b.build();
        let view = GraphView::full(&g);
        let hubs = HubBitmaps::build(&view, 1, 4);
        assert!(hubs.item_hub_count() > 0, "the shared item must be a hub");
        let mut ks = KernelScratch::new(g.num_users());
        let mut wedge = CommonNeighborScratch::new(g.num_users());
        // Probe anchors at both ends; partners = everyone else.
        let partners = (n_users - 1) as usize;
        for u in [UserId(0), UserId(n_users - 1)] {
            for need in [partners - 1, partners, partners + 1] {
                let want = user_has_qualified_neighbors(&view, u, 1, need, &mut wedge);
                assert_eq!(
                    blocked_user_has_qualified_neighbors(&view, &hubs, u, 1, need, &mut ks),
                    want,
                    "n_users={n_users} u={u} need={need}"
                );
                assert_eq!(
                    want,
                    need <= partners,
                    "sanity: exactly {partners} partners"
                );
            }
        }
    }
}

/// `need` exactly at the qualified-partner bound on a perfect biclique,
/// answered by the *blocked* kernel against a populated registry: everyone
/// qualifies right up to (bound = items, need = users−1) and fails one
/// past it on either axis — the same edge `biclique_boundary_is_exact`
/// pins for the sorted kernel.
#[test]
fn blocked_biclique_boundary_is_exact() {
    let (nu, ni) = (9u32, 7u32);
    let mut b = GraphBuilder::new();
    for u in 0..nu {
        for v in 0..ni {
            b.add_click(UserId(u), ItemId(v), 2);
        }
    }
    let g = b.build();
    let view = GraphView::full(&g);
    let hubs = HubBitmaps::build(&view, 1, 64);
    let mut ks = KernelScratch::new(g.num_users());
    for u in (0..nu).map(UserId) {
        assert!(blocked_user_has_qualified_neighbors(
            &view,
            &hubs,
            u,
            ni,
            (nu - 1) as usize,
            &mut ks
        ));
        assert!(!blocked_user_has_qualified_neighbors(
            &view,
            &hubs,
            u,
            ni + 1,
            1,
            &mut ks
        ));
        assert!(!blocked_user_has_qualified_neighbors(
            &view,
            &hubs,
            u,
            ni,
            nu as usize,
            &mut ks
        ));
    }
    assert_three_way_agree(&view, &hubs, 0..9, 0..5);
}

/// Degree-1 chains end to end: u_i — v_i with no shared items anywhere.
/// Nobody has any qualified partner at bound ≥ 1; at bound 0 partners are
/// still absent because no item has two users.
#[test]
fn degree_one_chain_has_no_partners() {
    let mut b = GraphBuilder::new();
    for i in 0..70u32 {
        b.add_click(UserId(i), ItemId(i), 3);
    }
    let g = b.build();
    let view = GraphView::full(&g);
    assert_counters_agree(&view, 0..3);
    let mut sorted = SortedNeighborScratch::new(g.num_users());
    for u in (0..70u32).map(UserId) {
        assert!(!user_has_qualified_neighbors_sorted(
            &view,
            u,
            1,
            1,
            &mut sorted
        ));
        assert!(!user_has_qualified_neighbors_sorted(
            &view,
            u,
            0,
            1,
            &mut sorted
        ));
        assert!(user_has_qualified_neighbors_sorted(
            &view,
            u,
            3,
            0,
            &mut sorted
        ));
    }
}

/// The perfect-biclique fixture: every user shares every item with every
/// other user, so the sorted test must qualify everyone right up to the
/// exact (bound = items, need = users-1) edge and fail just past it.
#[test]
fn biclique_boundary_is_exact() {
    let (nu, ni) = (9u32, 7u32);
    let mut b = GraphBuilder::new();
    for u in 0..nu {
        for v in 0..ni {
            b.add_click(UserId(u), ItemId(v), 2);
        }
    }
    let g = b.build();
    let view = GraphView::full(&g);
    let mut sorted = SortedNeighborScratch::new(g.num_users());
    for u in (0..nu).map(UserId) {
        assert!(user_has_qualified_neighbors_sorted(
            &view,
            u,
            ni,
            (nu - 1) as usize,
            &mut sorted
        ));
        assert!(!user_has_qualified_neighbors_sorted(
            &view,
            u,
            ni + 1,
            1,
            &mut sorted
        ));
        assert!(!user_has_qualified_neighbors_sorted(
            &view,
            u,
            ni,
            nu as usize,
            &mut sorted
        ));
    }
    assert_counters_agree(&view, 0..9);
}
