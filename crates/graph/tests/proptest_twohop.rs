//! Differential property tests for the sorted-intersection two-hop
//! counter (`twohop::*_has_qualified_neighbors_sorted`).
//!
//! The sharded pruning fixpoint decides every SquarePruning removal with
//! the sorted-intersection test; the original wedge-accumulation test is
//! kept precisely so these properties can assert the two always agree —
//! on random graphs, on both graph representations, and on the
//! adversarial shapes where intersection strategies go wrong (star hubs
//! that trigger galloping, degree-1 chains with nothing to intersect).

use proptest::prelude::*;
use ricd_graph::{
    twohop::{
        item_has_qualified_neighbors, item_has_qualified_neighbors_sorted,
        user_has_qualified_neighbors, user_has_qualified_neighbors_sorted, CommonNeighborScratch,
        SortedNeighborScratch,
    },
    CompactBigraph, CompactView, DeltaAdjacency, GraphBuilder, GraphView, ItemId, UserId,
};

fn records() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..50, 0u32..35, 1u32..10), 0..250)
}

fn build(records: &[(u32, u32, u32)]) -> ricd_graph::BipartiteGraph {
    let mut b = GraphBuilder::new();
    for &(u, v, c) in records {
        b.add_click(UserId(u), ItemId(v), c);
    }
    b.build()
}

/// Exhaustively compares the sorted and wedge tests over every vertex and
/// a grid of (bound, need) parameters on one view.
fn assert_counters_agree(view: &GraphView<'_>, bounds: std::ops::Range<u32>) {
    let g = view.graph();
    let mut wedge_u = CommonNeighborScratch::new(g.num_users());
    let mut sorted_u = SortedNeighborScratch::new(g.num_users());
    for u in (0..g.num_users() as u32).map(UserId) {
        for bound in bounds.clone() {
            for need in 0..5usize {
                assert_eq!(
                    user_has_qualified_neighbors_sorted(view, u, bound, need, &mut sorted_u),
                    user_has_qualified_neighbors(view, u, bound, need, &mut wedge_u),
                    "user {u} bound={bound} need={need}"
                );
            }
        }
    }
    let mut wedge_i = CommonNeighborScratch::new(g.num_items());
    let mut sorted_i = SortedNeighborScratch::new(g.num_items());
    for v in (0..g.num_items() as u32).map(ItemId) {
        for bound in bounds.clone() {
            for need in 0..5usize {
                assert_eq!(
                    item_has_qualified_neighbors_sorted(view, v, bound, need, &mut sorted_i),
                    item_has_qualified_neighbors(view, v, bound, need, &mut wedge_i),
                    "item {v} bound={bound} need={need}"
                );
            }
        }
    }
}

proptest! {
    /// The sorted-intersection test equals the wedge test on random
    /// graphs, before and after random removals.
    #[test]
    fn sorted_equals_wedge_on_random_graphs(
        recs in records(),
        dead_users in proptest::collection::btree_set(0u32..50, 0..15),
        dead_items in proptest::collection::btree_set(0u32..35, 0..10),
    ) {
        let g = build(&recs);
        let mut view = GraphView::full(&g);
        assert_counters_agree(&view, 0..4);
        for &u in &dead_users {
            if (u as usize) < g.num_users() {
                view.remove_user(UserId(u));
            }
        }
        for &v in &dead_items {
            if (v as usize) < g.num_items() {
                view.remove_item(ItemId(v));
            }
        }
        assert_counters_agree(&view, 0..4);
    }

    /// Representation independence: on the same world, the sorted test
    /// answers identically over the dense `GraphView` and the compact
    /// `CompactView` — including after mirrored removals.
    #[test]
    fn sorted_counter_agrees_across_representations(
        recs in records(),
        kills in proptest::collection::vec((any::<bool>(), 0u32..50), 0..40),
    ) {
        let g = build(&recs);
        let c = CompactBigraph::from_graph(&g);
        let mut dense = GraphView::full(&g);
        let mut compact = CompactView::full(&c);
        for &(is_user, id) in &kills {
            if is_user {
                if (id as usize) < g.num_users() {
                    dense.remove_user(UserId(id));
                    compact.remove_user(UserId(id));
                }
            } else if (id as usize) < g.num_items() {
                dense.remove_item(ItemId(id));
                compact.remove_item(ItemId(id));
            }
        }
        let mut s1 = SortedNeighborScratch::new(g.num_users());
        let mut s2 = SortedNeighborScratch::new(g.num_users());
        for u in (0..g.num_users() as u32).map(UserId) {
            for bound in 0..3u32 {
                for need in 0..4usize {
                    prop_assert_eq!(
                        user_has_qualified_neighbors_sorted(&dense, u, bound, need, &mut s1),
                        user_has_qualified_neighbors_sorted(&compact, u, bound, need, &mut s2),
                        "user {} bound={} need={}", u, bound, need
                    );
                }
            }
        }
    }

    /// Star hubs: one ultra-popular item shared by every user forces the
    /// skewed-degree regime where galloping (not two-pointer merging)
    /// decides intersections; leaf users have nothing else in common.
    #[test]
    fn star_hub_worlds(hub_users in 20u32..80, clique in 2u32..6) {
        let mut b = GraphBuilder::new();
        for u in 0..hub_users {
            b.add_click(UserId(u), ItemId(0), 1);
        }
        // A small clique of users sharing `clique` private items each.
        for u in 0..4u32 {
            for v in 0..clique {
                b.add_click(UserId(u), ItemId(1 + v), 1);
            }
        }
        // Degree-1 chain stragglers: user i clicks only private item i.
        for i in 0..10u32 {
            b.add_click(UserId(hub_users + i), ItemId(100 + i), 1);
        }
        let g = b.build();
        let view = GraphView::full(&g);
        assert_counters_agree(&view, 0..5);
        // And with the hub removed, the skew collapses; still identical.
        let mut view = view;
        view.remove_item(ItemId(0));
        assert_counters_agree(&view, 0..5);
    }

    /// Sorted-invariant violations are rejected at construction, not
    /// silently mis-encoded: any adjacency list with a duplicate or an
    /// inversion fails `DeltaAdjacency::from_lists`.
    #[test]
    fn unsorted_adjacency_rejected(ids in proptest::collection::vec(0u32..100, 2..30),
                                   dup_at in 0usize..28) {
        let mut sorted: Vec<u32> = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        // A valid strictly-increasing list encodes fine.
        let ok = [sorted.as_slice()];
        prop_assert!(DeltaAdjacency::from_lists(ok, 100).is_ok());
        if sorted.len() >= 2 {
            // Duplicate injection.
            let mut dup = sorted.clone();
            let at = dup_at % (dup.len() - 1);
            dup.insert(at, dup[at]);
            prop_assert!(DeltaAdjacency::from_lists([dup.as_slice()], 100).is_err());
            // Inversion injection.
            let mut inv = sorted.clone();
            inv.swap(0, sorted.len() - 1);
            prop_assert!(DeltaAdjacency::from_lists([inv.as_slice()], 100).is_err());
        }
        // Out-of-range neighbor id.
        let oob = [&[100u32][..]];
        prop_assert!(DeltaAdjacency::from_lists(oob, 100).is_err());
    }
}

/// Degree-1 chains end to end: u_i — v_i with no shared items anywhere.
/// Nobody has any qualified partner at bound ≥ 1; at bound 0 partners are
/// still absent because no item has two users.
#[test]
fn degree_one_chain_has_no_partners() {
    let mut b = GraphBuilder::new();
    for i in 0..70u32 {
        b.add_click(UserId(i), ItemId(i), 3);
    }
    let g = b.build();
    let view = GraphView::full(&g);
    assert_counters_agree(&view, 0..3);
    let mut sorted = SortedNeighborScratch::new(g.num_users());
    for u in (0..70u32).map(UserId) {
        assert!(!user_has_qualified_neighbors_sorted(
            &view,
            u,
            1,
            1,
            &mut sorted
        ));
        assert!(!user_has_qualified_neighbors_sorted(
            &view,
            u,
            0,
            1,
            &mut sorted
        ));
        assert!(user_has_qualified_neighbors_sorted(
            &view,
            u,
            3,
            0,
            &mut sorted
        ));
    }
}

/// The perfect-biclique fixture: every user shares every item with every
/// other user, so the sorted test must qualify everyone right up to the
/// exact (bound = items, need = users-1) edge and fail just past it.
#[test]
fn biclique_boundary_is_exact() {
    let (nu, ni) = (9u32, 7u32);
    let mut b = GraphBuilder::new();
    for u in 0..nu {
        for v in 0..ni {
            b.add_click(UserId(u), ItemId(v), 2);
        }
    }
    let g = b.build();
    let view = GraphView::full(&g);
    let mut sorted = SortedNeighborScratch::new(g.num_users());
    for u in (0..nu).map(UserId) {
        assert!(user_has_qualified_neighbors_sorted(
            &view,
            u,
            ni,
            (nu - 1) as usize,
            &mut sorted
        ));
        assert!(!user_has_qualified_neighbors_sorted(
            &view,
            u,
            ni + 1,
            1,
            &mut sorted
        ));
        assert!(!user_has_qualified_neighbors_sorted(
            &view,
            u,
            ni,
            nu as usize,
            &mut sorted
        ));
    }
    assert_counters_agree(&view, 0..9);
}
