//! Injectable time sources.
//!
//! Every duration the registry records flows through a [`Clock`], so tests
//! can substitute a [`ManualClock`] and obtain *bit-identical* snapshots for
//! identical runs — the property the golden-snapshot suite pins. Production
//! code uses the [`MonotonicClock`] default and never notices.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source measured as an offset from the clock's own epoch.
///
/// The trait deliberately exposes *offsets* rather than `Instant`s: offsets
/// subtract into durations without panicking, serialize trivially, and a
/// manual implementation can be a single atomic counter.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
}

/// The production clock: wall (monotonic) time since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A deterministic clock that only moves when told to.
///
/// Cloning shares the underlying counter, so a test can keep a handle while
/// the registry owns another.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock frozen at its epoch (zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute offset from its epoch.
    pub fn set(&self, d: Duration) {
        self.nanos
            .store(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.now() > a);
    }

    #[test]
    fn manual_clock_only_moves_when_told() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(5));
        c.set(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_secs(1));
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance(Duration::from_nanos(7));
        assert_eq!(b.now(), Duration::from_nanos(7));
    }
}
