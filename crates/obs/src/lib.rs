#![warn(missing_docs)]

//! # ricd-obs — observability substrate for the RICD runtime
//!
//! The paper's Fig 8b argument is *observational*: RICD wins because the
//! per-module elapsed-time split shows detection dominating screening. A
//! production deployment needs that observability everywhere — per-partition
//! pool health, pipeline phase timings and group counts, streaming lag,
//! I/O quarantines — in one machine-readable place. This crate provides it:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, fixed-bucket
//!   [`Histogram`]s, and hierarchical [`Span`]s behind one cloneable,
//!   thread-safe handle. Lock-cheap: handles are `Arc`'d atomics, the
//!   registry mutex is touched only at registration and span boundaries.
//! * [`Clock`] — an injectable time source. Production uses
//!   [`MonotonicClock`]; tests use [`ManualClock`] so identical runs
//!   produce identical snapshots.
//! * [`Recorder`] — a pluggable live-trace receiver (the CLI's `--trace`
//!   plugs in [`StderrTraceRecorder`]; tests use [`CollectingRecorder`]).
//! * [`MetricsSnapshot`] — a deterministic (sorted-key) serializable
//!   export, with a [`count_only`](MetricsSnapshot::count_only) projection
//!   that strips every timing-dependent field for golden comparison.

pub mod clock;
pub mod recorder;
pub mod registry;
pub mod snapshot;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use recorder::{CollectingRecorder, NullRecorder, Recorder, StderrTraceRecorder, TraceEntry};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, Span, DURATION_BUCKETS_NANOS};
pub use snapshot::{EventSnapshot, HistogramSnapshot, MetricsSnapshot, SpanSnapshot};
