//! Pluggable receivers for live span/event traffic.
//!
//! The registry aggregates everything for the end-of-run snapshot; a
//! [`Recorder`] additionally sees each span and event *as it happens*, which
//! is what a live trace view (the CLI's `--trace`) or a test that asserts
//! ordering needs. Recorders must be cheap and non-blocking: they run inline
//! on the instrumented thread.

use std::sync::Mutex;
use std::time::Duration;

/// Receives span and event notifications as they occur.
///
/// All methods have empty defaults so a recorder only implements what it
/// watches. Implementations must be thread-safe: phases running on worker
/// threads report through the same recorder.
pub trait Recorder: Send + Sync {
    /// A span was opened. `path` is the full `/`-separated span path;
    /// `depth` is its nesting level (root spans are depth 0).
    fn span_started(&self, path: &str, depth: usize) {
        let _ = (path, depth);
    }

    /// A span finished after `elapsed`.
    fn span_finished(&self, path: &str, depth: usize, elapsed: Duration) {
        let _ = (path, depth, elapsed);
    }

    /// A point event (e.g. a degradation) was emitted.
    fn event(&self, name: &str, message: &str) {
        let _ = (name, message);
    }
}

/// Discards everything — the default recorder.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// Writes a human-readable span tree to stderr as spans finish.
///
/// Children finish before their parents, so the output is post-order; the
/// indentation still makes the hierarchy obvious, and streaming beats
/// buffering when the run dies halfway.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrTraceRecorder;

impl Recorder for StderrTraceRecorder {
    fn span_finished(&self, path: &str, depth: usize, elapsed: Duration) {
        let name = path.rsplit('/').next().unwrap_or(path);
        eprintln!("trace: {}{name} {elapsed:?}", "  ".repeat(depth));
    }

    fn event(&self, name: &str, message: &str) {
        eprintln!("trace: ! {name}: {message}");
    }
}

/// Collects every notification in arrival order — the test recorder.
#[derive(Debug, Default)]
pub struct CollectingRecorder {
    entries: Mutex<Vec<TraceEntry>>,
}

/// One notification seen by a [`CollectingRecorder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEntry {
    /// Span opened.
    Started {
        /// Full span path.
        path: String,
        /// Nesting depth.
        depth: usize,
    },
    /// Span finished.
    Finished {
        /// Full span path.
        path: String,
        /// Nesting depth.
        depth: usize,
    },
    /// Point event.
    Event {
        /// Event name.
        name: String,
        /// Event payload.
        message: String,
    },
}

impl CollectingRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far, in arrival order.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.entries.lock().expect("recorder poisoned").clone()
    }
}

impl Recorder for CollectingRecorder {
    fn span_started(&self, path: &str, depth: usize) {
        self.entries
            .lock()
            .expect("recorder poisoned")
            .push(TraceEntry::Started {
                path: path.to_string(),
                depth,
            });
    }

    fn span_finished(&self, path: &str, depth: usize, _elapsed: Duration) {
        self.entries
            .lock()
            .expect("recorder poisoned")
            .push(TraceEntry::Finished {
                path: path.to_string(),
                depth,
            });
    }

    fn event(&self, name: &str, message: &str) {
        self.entries
            .lock()
            .expect("recorder poisoned")
            .push(TraceEntry::Event {
                name: name.to_string(),
                message: message.to_string(),
            });
    }
}
