//! The metrics registry: named counters, gauges, fixed-bucket histograms,
//! and hierarchical spans behind one cloneable handle.
//!
//! The registry is **lock-cheap**: looking a metric up by name takes a
//! mutex once, but the returned handle is an `Arc`'d atomic — hot loops
//! register outside the loop and then increment without any lock. Spans
//! touch a mutex only at start/finish, which is noise next to the phase
//! durations they measure.

use crate::clock::{Clock, ManualClock, MonotonicClock};
use crate::recorder::{NullRecorder, Recorder};
use crate::snapshot::{EventSnapshot, HistogramSnapshot, MetricsSnapshot, SpanSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing count. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed value. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The default histogram bucket bounds for durations, in nanoseconds:
/// 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s (+ implicit overflow).
pub const DURATION_BUCKETS_NANOS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds, ascending; one extra implicit `+inf` bucket.
    bounds: Vec<u64>,
    /// One cell per bound, plus the overflow cell.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (typically nanoseconds).
/// Cloning shares the underlying cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        let mut b = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramCore {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration observation in nanoseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.0.sum.load(Ordering::Relaxed),
            bounds: self.0.bounds.clone(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct SpanAgg {
    count: u64,
    total_nanos: u64,
}

#[derive(Debug)]
struct Inner {
    clock: Arc<dyn Clock>,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    events: Mutex<Vec<(String, String)>>,
    recorder: Mutex<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for dyn Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("<recorder>")
    }
}

/// The shared metrics registry. Cloning is cheap (an `Arc` bump) and every
/// clone observes the same metric space.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A registry on the production [`MonotonicClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on a frozen [`ManualClock`], returning the clock handle so
    /// the test can advance it. All durations stay zero unless advanced —
    /// the deterministic-snapshot configuration.
    pub fn deterministic() -> (Self, ManualClock) {
        let clock = ManualClock::new();
        (Self::with_clock(Arc::new(clock.clone())), clock)
    }

    /// A registry on an arbitrary [`Clock`].
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
                events: Mutex::new(Vec::new()),
                recorder: Mutex::new(Arc::new(NullRecorder)),
            }),
        }
    }

    /// Installs `recorder` as the live trace receiver (replacing the
    /// previous one).
    pub fn set_recorder(&self, recorder: Arc<dyn Recorder>) {
        *self.inner.recorder.lock().expect("registry poisoned") = recorder;
    }

    fn recorder(&self) -> Arc<dyn Recorder> {
        self.inner
            .recorder
            .lock()
            .expect("registry poisoned")
            .clone()
    }

    /// The registry's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// Returns (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Adds `n` to counter `name` (one-shot convenience; hot paths should
    /// hold the [`Counter`] handle instead).
    pub fn inc_by(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Returns (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (registering on first use) the histogram `name` with the
    /// given inclusive upper bucket bounds. Bounds are fixed at first
    /// registration; later calls with different bounds get the original.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.inner
            .histograms
            .lock()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Returns (registering on first use) a duration histogram with the
    /// default [`DURATION_BUCKETS_NANOS`] bounds.
    pub fn duration_histogram(&self, name: &str) -> Histogram {
        self.histogram(name, &DURATION_BUCKETS_NANOS)
    }

    /// Emits a point event (e.g. a degradation notice). Events keep their
    /// emission order in the snapshot.
    pub fn event(&self, name: &str, message: &str) {
        self.inner
            .events
            .lock()
            .expect("registry poisoned")
            .push((name.to_string(), message.to_string()));
        self.recorder().event(name, message);
    }

    /// Number of `name` events emitted so far.
    pub fn event_count(&self, name: &str) -> usize {
        self.inner
            .events
            .lock()
            .expect("registry poisoned")
            .iter()
            .filter(|(n, _)| n == name)
            .count()
    }

    /// Opens a root span named `name`. Dropping the guard records the
    /// elapsed time under the span's path.
    pub fn span(&self, name: &str) -> Span {
        self.start_span(name.to_string(), 0)
    }

    /// Times `f` under a root span and returns its result.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let _span = self.span(name);
        f()
    }

    /// Records a span that was timed externally (bridging legacy
    /// [`Duration`]-based instrumentation into the registry).
    pub fn record_span_elapsed(&self, path: &str, elapsed: Duration) {
        self.finish_span(path, 0, elapsed);
    }

    fn start_span(&self, path: String, depth: usize) -> Span {
        self.recorder().span_started(&path, depth);
        Span {
            registry: self.clone(),
            started: self.inner.clock.now(),
            path,
            depth,
            finished: false,
        }
    }

    fn finish_span(&self, path: &str, depth: usize, elapsed: Duration) {
        {
            let mut spans = self.inner.spans.lock().expect("registry poisoned");
            let agg = spans.entry(path.to_string()).or_default();
            agg.count += 1;
            agg.total_nanos = agg
                .total_nanos
                .saturating_add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        }
        self.recorder().span_finished(path, depth, elapsed);
    }

    /// A consistent snapshot of everything recorded so far. Keys are sorted
    /// (maps are `BTreeMap`s), so serializing the same logical state always
    /// yields the same bytes.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            spans: self
                .inner
                .spans
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        SpanSnapshot {
                            count: v.count,
                            total_nanos: v.total_nanos,
                        },
                    )
                })
                .collect(),
            events: self
                .inner
                .events
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(n, m)| EventSnapshot {
                    name: n.clone(),
                    message: m.clone(),
                })
                .collect(),
        }
    }
}

/// An open span. Finishes (records) on drop, or explicitly via
/// [`finish`](Span::finish).
#[derive(Debug)]
pub struct Span {
    registry: MetricsRegistry,
    started: Duration,
    path: String,
    depth: usize,
    finished: bool,
}

impl Span {
    /// Opens a child span; its path is `parent-path/name`.
    pub fn child(&self, name: &str) -> Span {
        self.registry
            .start_span(format!("{}/{name}", self.path), self.depth + 1)
    }

    /// Times `f` under a child span and returns its result.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let _child = self.child(name);
        f()
    }

    /// The span's full `/`-separated path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Finishes the span now, recording its elapsed time.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let elapsed = self.registry.inner.clock.now().saturating_sub(self.started);
        self.registry.finish_span(&self.path, self.depth, elapsed);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{CollectingRecorder, TraceEntry};

    #[test]
    fn counters_accumulate_and_share() {
        let r = MetricsRegistry::new();
        let c = r.counter("a");
        c.inc();
        r.counter("a").add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("b").get(), 0);
    }

    #[test]
    fn gauges_set_and_add() {
        let r = MetricsRegistry::new();
        let g = r.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(r.gauge("g").get(), 7);
    }

    #[test]
    fn histogram_buckets_observations() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h", &[10, 100]);
        h.observe(5);
        h.observe(10); // inclusive upper bound
        h.observe(50);
        h.observe(1000); // overflow bucket
        let snap = r.snapshot();
        let (_, hs) = &snap.histograms[0];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 1065);
        assert_eq!(hs.buckets, vec![2, 1, 1]);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let (r, clock) = MetricsRegistry::deterministic();
        {
            let root = r.span("run");
            clock.advance(Duration::from_millis(1));
            {
                let child = root.child("phase");
                clock.advance(Duration::from_millis(2));
                child.finish();
            }
            root.time("phase", || clock.advance(Duration::from_millis(3)));
        }
        let snap = r.snapshot();
        assert_eq!(snap.span("run/phase").unwrap().count, 2);
        assert_eq!(
            snap.span("run/phase").unwrap().total_nanos,
            Duration::from_millis(5).as_nanos() as u64
        );
        assert_eq!(
            snap.span("run").unwrap().total_nanos,
            Duration::from_millis(6).as_nanos() as u64
        );
    }

    #[test]
    fn manual_clock_makes_durations_zero() {
        let (r, _clock) = MetricsRegistry::deterministic();
        r.time("p", || ());
        assert_eq!(r.snapshot().span("p").unwrap().total_nanos, 0);
    }

    #[test]
    fn events_keep_order_and_count() {
        let r = MetricsRegistry::new();
        r.event("degradation", "deadline");
        r.event("other", "x");
        r.event("degradation", "cap");
        assert_eq!(r.event_count("degradation"), 2);
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events[0].message, "deadline");
        assert_eq!(snap.events[2].message, "cap");
    }

    #[test]
    fn recorder_sees_live_traffic() {
        let r = MetricsRegistry::new();
        let rec = Arc::new(CollectingRecorder::new());
        r.set_recorder(rec.clone());
        r.time("outer", || r.event("e", "m"));
        let entries = rec.entries();
        assert_eq!(
            entries,
            vec![
                TraceEntry::Started {
                    path: "outer".into(),
                    depth: 0
                },
                TraceEntry::Event {
                    name: "e".into(),
                    message: "m".into()
                },
                TraceEntry::Finished {
                    path: "outer".into(),
                    depth: 0
                },
            ]
        );
    }

    #[test]
    fn clones_share_the_metric_space() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.counter("shared").inc();
        r2.counter("shared").inc();
        assert_eq!(r.counter("shared").get(), 2);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    let c = r.counter("n");
                    let h = r.histogram("h", &[100]);
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i % 200);
                        r.time("span", || {});
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("n"), Some(8000));
        assert_eq!(snap.span("span").unwrap().count, 8000);
        let (_, hs) = &snap.histograms[0];
        assert_eq!(hs.count, 8000);
    }
}
