//! Deterministic, serializable snapshots of a registry's state.
//!
//! Snapshots are the machine-readable export behind the CLI's
//! `--metrics-out` and the golden-comparison substrate of the test suite:
//! keys are emitted in sorted order, events in emission order, and
//! [`count_only`](MetricsSnapshot::count_only) strips every
//! timing-dependent field so that two runs of the same seeded workload
//! serialize to byte-identical JSON.

use serde::{Deserialize, Serialize};

/// Aggregated state of one span path.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// How many times the span ran.
    pub count: u64,
    /// Total time across runs, in nanoseconds.
    pub total_nanos: u64,
}

/// State of one fixed-bucket histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Inclusive upper bucket bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; one cell per bound plus a final
    /// overflow cell.
    pub buckets: Vec<u64>,
}

/// One point event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSnapshot {
    /// Event name (e.g. `degradation`).
    pub name: String,
    /// Event payload.
    pub message: String,
}

/// A full registry snapshot with deterministic field ordering.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(path, state)` spans, sorted by path.
    pub spans: Vec<(String, SpanSnapshot)>,
    /// Events in emission order.
    pub events: Vec<EventSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Aggregate of span `path`, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|(n, _)| n == path).map(|(_, s)| s)
    }

    /// Total time of span `path` in milliseconds (`0.0` if absent).
    pub fn span_millis(&self, path: &str) -> f64 {
        self.span(path)
            .map(|s| s.total_nanos as f64 / 1e6)
            .unwrap_or(0.0)
    }

    /// Sum of `total_nanos` over every span whose path starts with
    /// `prefix` and has no further `/` (i.e. the direct phases of a
    /// hierarchy level).
    pub fn span_level_total_nanos(&self, prefix: &str) -> u64 {
        self.spans
            .iter()
            .filter(|(p, _)| {
                p.strip_prefix(prefix)
                    .and_then(|rest| rest.strip_prefix('/'))
                    .is_some_and(|rest| !rest.contains('/'))
            })
            .map(|(_, s)| s.total_nanos)
            .sum()
    }

    /// The timing-free projection: span durations, histogram sums and
    /// bucket distributions are zeroed (histogram *counts* survive — how
    /// many observations happened is behavior, how long they took is not).
    /// Two runs of the same deterministic workload produce equal count-only
    /// snapshots even on a wall clock.
    pub fn count_only(&self) -> MetricsSnapshot {
        let mut out = self.clone();
        for (_, s) in &mut out.spans {
            s.total_nanos = 0;
        }
        for (_, h) in &mut out.histograms {
            h.sum = 0;
            for b in &mut h.buckets {
                *b = 0;
            }
        }
        out
    }

    /// Renders the span hierarchy as an indented tree, one line per path,
    /// children under parents, siblings sorted by path.
    pub fn render_span_tree(&self) -> String {
        let mut out = String::new();
        for (path, agg) in &self.spans {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let ms = agg.total_nanos as f64 / 1e6;
            out.push_str(&format!(
                "{}{name}  count={} total={ms:.3}ms\n",
                "  ".repeat(depth),
                agg.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a".into(), 1), ("b".into(), 2)],
            gauges: vec![("g".into(), -5)],
            histograms: vec![(
                "h".into(),
                HistogramSnapshot {
                    count: 3,
                    sum: 42,
                    bounds: vec![10, 100],
                    buckets: vec![1, 1, 1],
                },
            )],
            spans: vec![
                (
                    "run".into(),
                    SpanSnapshot {
                        count: 1,
                        total_nanos: 500,
                    },
                ),
                (
                    "run/detect".into(),
                    SpanSnapshot {
                        count: 1,
                        total_nanos: 300,
                    },
                ),
                (
                    "run/detect/extract".into(),
                    SpanSnapshot {
                        count: 2,
                        total_nanos: 100,
                    },
                ),
                (
                    "run/screen".into(),
                    SpanSnapshot {
                        count: 1,
                        total_nanos: 100,
                    },
                ),
            ],
            events: vec![EventSnapshot {
                name: "degradation".into(),
                message: "deadline".into(),
            }],
        }
    }

    #[test]
    fn accessors_find_entries() {
        let s = sample();
        assert_eq!(s.counter("a"), Some(1));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("g"), Some(-5));
        assert_eq!(s.span("run/detect").unwrap().total_nanos, 300);
        assert!((s.span_millis("run") - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn level_total_sums_direct_children_only() {
        let s = sample();
        // run/detect + run/screen, NOT run/detect/extract.
        assert_eq!(s.span_level_total_nanos("run"), 400);
    }

    #[test]
    fn count_only_zeroes_durations_keeps_counts() {
        let c = sample().count_only();
        assert!(c.spans.iter().all(|(_, s)| s.total_nanos == 0));
        assert_eq!(c.span("run/detect").unwrap().count, 1);
        let (_, h) = &c.histograms[0];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 0);
        assert!(h.buckets.iter().all(|&b| b == 0));
        assert_eq!(h.bounds, vec![10, 100], "bounds are config, not timing");
        assert_eq!(c.events, sample().events, "events survive");
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let s = sample();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // Determinism: serializing twice yields identical bytes.
        assert_eq!(json, serde_json::to_string_pretty(&s).unwrap());
    }

    #[test]
    fn span_tree_renders_hierarchy() {
        let tree = sample().render_span_tree();
        assert!(tree.contains("run  count=1"));
        assert!(tree.contains("\n  detect"), "{tree}");
        assert!(tree.contains("\n    extract"), "{tree}");
    }
}
