//! Exposure accounting: what an attack buys, and what a cleaning removes.
//!
//! The Section VII bottom line — "based on the prediction result of the
//! traffic model, our framework protects hundreds of thousands of users
//! from incorrect recommendations in this campaign" — is a statement about
//! *exposure*: the number of users whose recommendation lists contain the
//! boosted targets. This module measures it directly on recommendation
//! lists instead of a traffic model.

use crate::index::I2iIndex;
use crate::recommend::Recommender;
use ricd_engine::WorkerPool;
use ricd_graph::{BipartiteGraph, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// Users whose top-`n` recommendations contain at least one of `items`.
///
/// Evaluated in parallel over the user population.
pub fn exposed_users(
    g: &BipartiteGraph,
    index: &I2iIndex,
    items: &[ItemId],
    n: usize,
    pool: &WorkerPool,
) -> Vec<UserId> {
    let rec = Recommender::new(g, index.clone());
    pool.filter_vertices(g.num_users(), |u| {
        let u = UserId(u as u32);
        if g.user_degree(u) == 0 {
            return false;
        }
        rec.recommend(u, n).iter().any(|(v, _)| items.contains(v))
    })
    .into_iter()
    .map(|u| UserId(u as u32))
    .collect()
}

/// Before/after exposure comparison for a set of target items.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttackImpact {
    /// Users exposed to the targets *before* the manipulation.
    pub exposed_before: usize,
    /// Users exposed *after* the manipulation.
    pub exposed_after: usize,
    /// The attack's net gain in exposed users — the users a timely cleaning
    /// protects.
    pub users_protected_by_cleaning: usize,
}

/// Measures how many users' recommendation lists the attack reached:
/// `before` is the clean graph, `after` the attacked one. Both graphs must
/// share the user/item id space (the attacked graph extends it).
pub fn attack_impact(
    before: &BipartiteGraph,
    after: &BipartiteGraph,
    targets: &[ItemId],
    top_n: usize,
    pool: &WorkerPool,
) -> AttackImpact {
    let idx_before = I2iIndex::build(before, top_n * 4, pool);
    let idx_after = I2iIndex::build(after, top_n * 4, pool);
    let exposed_before = exposed_users(before, &idx_before, targets, top_n, pool).len();
    let exposed_after = exposed_users(after, &idx_after, targets, top_n, pool).len();
    AttackImpact {
        exposed_before,
        exposed_after,
        users_protected_by_cleaning: exposed_after.saturating_sub(exposed_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::GraphBuilder;

    fn organic() -> GraphBuilder {
        let mut b = GraphBuilder::new();
        // 50 victims click hot i0 (and something else, so they have lists).
        for u in 0..50u32 {
            b.add_click(UserId(u), ItemId(0), 2);
            b.add_click(UserId(u), ItemId(1 + u % 4), 1);
        }
        b.clone()
    }

    #[test]
    fn attack_raises_exposure_substantially() {
        let before = organic().build();
        let mut b = organic();
        // Workers forge hot→target co-clicks.
        for w in 100..112u32 {
            b.add_click(UserId(w), ItemId(0), 1);
            b.add_click(UserId(w), ItemId(99), 14);
        }
        let after = b.build();
        let impact = attack_impact(&before, &after, &[ItemId(99)], 5, &WorkerPool::new(2));
        assert_eq!(impact.exposed_before, 0, "target invisible pre-attack");
        assert!(
            impact.exposed_after >= 40,
            "most hot-item clickers now see the target ({} exposed)",
            impact.exposed_after
        );
        assert_eq!(impact.users_protected_by_cleaning, impact.exposed_after);
    }

    #[test]
    fn exposure_counts_only_active_users() {
        let mut b = organic();
        b.reserve_users(1000); // inactive trailing users
        let g = b.build();
        let idx = I2iIndex::build(&g, 20, &WorkerPool::new(2));
        let exposed = exposed_users(&g, &idx, &[ItemId(1)], 5, &WorkerPool::new(2));
        assert!(exposed.iter().all(|u| g.user_degree(*u) > 0));
        // i1 is co-clicked with i0 by its clickers' siblings, so some users
        // who did NOT click i1 see it.
        assert!(!exposed.is_empty());
    }

    #[test]
    fn empty_targets_expose_nobody() {
        let g = organic().build();
        let idx = I2iIndex::build(&g, 20, &WorkerPool::new(2));
        assert!(exposed_users(&g, &idx, &[], 5, &WorkerPool::new(2)).is_empty());
    }
}
