//! The item-to-item co-click index.

use ricd_engine::WorkerPool;
use ricd_graph::{BipartiteGraph, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// A truncated I2I index: for every anchor item, the top-N related items by
/// Eq 1 score.
///
/// Built the way a production pipeline would: for each anchor item, wedge
/// enumeration over its clickers accumulates co-click counts `Cᵢ`, scores
/// are `Cᵢ / Σⱼ Cⱼ` (Eq 1), and only the top `n_per_item` survive. Anchors
/// are processed in parallel across the worker pool.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct I2iIndex {
    /// `lists[anchor] = [(related item, score)]`, descending score.
    lists: Vec<Vec<(ItemId, f32)>>,
}

impl I2iIndex {
    /// Builds the index with `n_per_item` entries per anchor.
    pub fn build(g: &BipartiteGraph, n_per_item: usize, pool: &WorkerPool) -> Self {
        let lists = pool.map_vertices(g.num_items(), |anchor| {
            build_list(g, ItemId(anchor as u32), n_per_item, &[])
        });
        Self { lists }
    }

    /// Builds the **cleaned** index: wedges through `excluded_users` (a
    /// sorted slice, typically a detection result's suspicious users) are
    /// skipped, so the co-clicks crowd workers forged never enter any
    /// anchor's list. This is the serving path that subtracts a detected
    /// attack from the recommender — the targets fall back to whatever
    /// organic co-click support they actually have.
    pub fn build_cleaned(
        g: &BipartiteGraph,
        n_per_item: usize,
        pool: &WorkerPool,
        excluded_users: &[UserId],
    ) -> Self {
        debug_assert!(excluded_users.windows(2).all(|w| w[0] <= w[1]));
        let lists = pool.map_vertices(g.num_items(), |anchor| {
            build_list(g, ItemId(anchor as u32), n_per_item, excluded_users)
        });
        Self { lists }
    }

    /// The recommendation list for an anchor item (empty if the anchor has
    /// no co-clicks).
    pub fn related(&self, anchor: ItemId) -> &[(ItemId, f32)] {
        self.lists
            .get(anchor.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The Eq 1 score of `item` against `anchor` within the truncated list.
    pub fn score(&self, anchor: ItemId, item: ItemId) -> Option<f32> {
        self.related(anchor)
            .iter()
            .find(|&&(v, _)| v == item)
            .map(|&(_, s)| s)
    }

    /// The rank (1-based) of `item` in `anchor`'s list, if present.
    pub fn rank(&self, anchor: ItemId, item: ItemId) -> Option<usize> {
        self.related(anchor)
            .iter()
            .position(|&(v, _)| v == item)
            .map(|p| p + 1)
    }

    /// Number of anchor items.
    pub fn num_items(&self) -> usize {
        self.lists.len()
    }
}

fn build_list(
    g: &BipartiteGraph,
    anchor: ItemId,
    n: usize,
    excluded_users: &[UserId],
) -> Vec<(ItemId, f32)> {
    // Wedge accumulation of co-click counts.
    let mut counts: std::collections::HashMap<ItemId, u64> = std::collections::HashMap::new();
    for (u, _) in g.item_neighbors(anchor) {
        if excluded_users.binary_search(&u).is_ok() {
            continue;
        }
        for (v, c) in g.user_neighbors(u) {
            if v != anchor {
                *counts.entry(v).or_default() += c as u64;
            }
        }
    }
    let total: u64 = counts.values().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut scored: Vec<(ItemId, f32)> = counts
        .into_iter()
        .map(|(v, c)| (v, (c as f64 / total as f64) as f32))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(n);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_graph::{GraphBuilder, UserId};

    fn toy() -> BipartiteGraph {
        // u0: i0, i1 x3 ; u1: i0 x2, i2 ; u2: i1 x5 (no i0 co-click).
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 1);
        b.add_click(UserId(0), ItemId(1), 3);
        b.add_click(UserId(1), ItemId(0), 2);
        b.add_click(UserId(1), ItemId(2), 1);
        b.add_click(UserId(2), ItemId(1), 5);
        b.build()
    }

    #[test]
    fn scores_match_eq1() {
        let idx = I2iIndex::build(&toy(), 10, &WorkerPool::new(2));
        // anchor i0: C(i1) = 3, C(i2) = 1 → scores 0.75 / 0.25.
        assert_eq!(idx.rank(ItemId(0), ItemId(1)), Some(1));
        assert!((idx.score(ItemId(0), ItemId(1)).unwrap() - 0.75).abs() < 1e-6);
        assert!((idx.score(ItemId(0), ItemId(2)).unwrap() - 0.25).abs() < 1e-6);
        assert_eq!(idx.score(ItemId(0), ItemId(0)), None, "self excluded");
    }

    #[test]
    fn truncation_keeps_top_n() {
        let mut b = GraphBuilder::new();
        for v in 1..20u32 {
            b.add_click(UserId(0), ItemId(v), v);
        }
        b.add_click(UserId(0), ItemId(0), 1);
        let g = b.build();
        let idx = I2iIndex::build(&g, 5, &WorkerPool::new(2));
        let related = idx.related(ItemId(0));
        assert_eq!(related.len(), 5);
        assert_eq!(related[0].0, ItemId(19), "highest co-click first");
        assert!(related.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn isolated_anchor_is_empty() {
        let idx = I2iIndex::build(&toy(), 10, &WorkerPool::new(2));
        // i2's only clicker is u1 → co-click with i0 only.
        assert_eq!(idx.related(ItemId(2)).len(), 1);
        assert!(idx.rank(ItemId(2), ItemId(9)).is_none());
    }

    #[test]
    fn matches_core_i2i_ranking() {
        // The index agrees with the reference single-anchor computation in
        // ricd-core.
        let g = toy();
        let idx = I2iIndex::build(&g, 100, &WorkerPool::new(2));
        let reference = ricd_core::i2i::i2i_ranking(&g, ItemId(0));
        let ours = idx.related(ItemId(0));
        assert_eq!(ours.len(), reference.len());
        for (a, b) in ours.iter().zip(&reference) {
            assert_eq!(a.0, b.0);
            assert!((a.1 as f64 - b.1).abs() < 1e-6);
        }
    }

    #[test]
    fn cleaned_index_drops_forged_wedges() {
        // Organic co-click i0↔i1; workers u10/u11 forge i0↔i99.
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 1);
        b.add_click(UserId(0), ItemId(1), 3);
        for w in 10..12u32 {
            b.add_click(UserId(w), ItemId(0), 1);
            b.add_click(UserId(w), ItemId(99), 14);
        }
        let g = b.build();
        let pool = WorkerPool::new(2);
        let dirty = I2iIndex::build(&g, 10, &pool);
        assert!(dirty.rank(ItemId(0), ItemId(99)).is_some(), "attack landed");
        let cleaned = I2iIndex::build_cleaned(&g, 10, &pool, &[UserId(10), UserId(11)]);
        assert!(cleaned.rank(ItemId(0), ItemId(99)).is_none(), "subtracted");
        assert_eq!(
            cleaned.rank(ItemId(0), ItemId(1)),
            Some(1),
            "organic support survives the cleaning"
        );
    }

    #[test]
    fn cleaned_with_no_exclusions_matches_dirty() {
        let g = toy();
        let pool = WorkerPool::new(2);
        let a = I2iIndex::build(&g, 10, &pool);
        let b = I2iIndex::build_cleaned(&g, 10, &pool, &[]);
        for v in 0..g.num_items() as u32 {
            assert_eq!(a.related(ItemId(v)), b.related(ItemId(v)));
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let g = toy();
        let a = I2iIndex::build(&g, 10, &WorkerPool::new(1));
        let b = I2iIndex::build(&g, 10, &WorkerPool::new(4));
        for v in 0..g.num_items() as u32 {
            assert_eq!(a.related(ItemId(v)), b.related(ItemId(v)));
        }
    }
}
