#![warn(missing_docs)]

//! # ricd-recommender — the system under attack
//!
//! The paper's setting is an **item-to-item recommendation system**: "once
//! the user clicks an item A, recommendation systems will figure out other
//! items that are 'similar' to A, then recommend them … the I2I-score turns
//! out to be the most valuable one" (Section I, Fig 3). The "Ride Item's
//! Coattails" attack exists *because* of this system, and the case study's
//! bottom line — "our framework protects hundreds of thousands of users
//! from incorrect recommendations" — is a claim about it.
//!
//! This crate builds that substrate:
//!
//! * [`I2iIndex`] — the full item-to-item co-click index (Eq 1 scores,
//!   top-N truncated per anchor item), built in parallel on the worker
//!   pool;
//! * [`Recommender`] — per-item and per-user recommendation lists;
//! * [`exposure`] — impression accounting: how many users see a given item
//!   in their recommendations, and therefore how much exposure an attack
//!   *buys* and a cleaning *removes* (the Section VII impact metric).

pub mod exposure;
pub mod index;
pub mod recommend;

pub use exposure::{attack_impact, exposed_users, AttackImpact};
pub use index::I2iIndex;
pub use recommend::{recommend_with, Recommender};
