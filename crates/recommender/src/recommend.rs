//! Per-user recommendation assembly.

use crate::index::I2iIndex;
use ricd_graph::{BipartiteGraph, ItemId, UserId};

/// The item-to-user recommender: aggregates the I2I lists of a user's
/// clicked items into one ranked list (the paper's "item-to-user
/// recommendation scenario").
pub struct Recommender<'g> {
    graph: &'g BipartiteGraph,
    index: I2iIndex,
}

impl<'g> Recommender<'g> {
    /// Wraps a prebuilt index.
    pub fn new(graph: &'g BipartiteGraph, index: I2iIndex) -> Self {
        Self { graph, index }
    }

    /// The underlying index.
    pub fn index(&self) -> &I2iIndex {
        &self.index
    }

    /// Top-`n` recommendations for `user`: each clicked item contributes
    /// its I2I list weighted by the user's clicks on the anchor; already
    /// clicked items are excluded (you don't recommend what the user
    /// already saw).
    pub fn recommend(&self, user: UserId, n: usize) -> Vec<(ItemId, f32)> {
        recommend_with(self.graph, &self.index, user, n)
    }

    /// Whether `item` appears in `user`'s top-`n` recommendations.
    pub fn would_see(&self, user: UserId, item: ItemId, n: usize) -> bool {
        self.recommend(user, n).iter().any(|&(v, _)| v == item)
    }
}

/// The borrowed serving path behind [`Recommender::recommend`]: assembles
/// `user`'s top-`n` list from a shared graph and index without taking
/// ownership of either, so a server can answer many concurrent queries from
/// one immutable snapshot.
pub fn recommend_with(
    graph: &BipartiteGraph,
    index: &I2iIndex,
    user: UserId,
    n: usize,
) -> Vec<(ItemId, f32)> {
    let mut scores: std::collections::HashMap<ItemId, f32> = std::collections::HashMap::new();
    for (anchor, clicks) in graph.user_neighbors(user) {
        for &(related, s) in index.related(anchor) {
            *scores.entry(related).or_default() += s * clicks as f32;
        }
    }
    // Exclude the user's own click history.
    for v in graph.user_adjacency(user) {
        scores.remove(v);
    }
    let mut out: Vec<(ItemId, f32)> = scores.into_iter().collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_engine::WorkerPool;
    use ricd_graph::GraphBuilder;

    /// u0 clicked i0; i0 co-clicks with i1 (strong) and i2 (weak); u0 also
    /// already clicked i2.
    fn setup() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        b.add_click(UserId(0), ItemId(0), 2);
        b.add_click(UserId(0), ItemId(2), 1);
        // Other users establish co-clicks.
        b.add_click(UserId(1), ItemId(0), 1);
        b.add_click(UserId(1), ItemId(1), 5);
        b.add_click(UserId(2), ItemId(0), 1);
        b.add_click(UserId(2), ItemId(2), 1);
        b.build()
    }

    fn recommender(g: &BipartiteGraph) -> Recommender<'_> {
        let index = I2iIndex::build(g, 10, &WorkerPool::new(2));
        Recommender::new(g, index)
    }

    #[test]
    fn recommends_co_clicked_items() {
        let g = setup();
        let r = recommender(&g);
        let recs = r.recommend(UserId(0), 5);
        assert_eq!(recs[0].0, ItemId(1), "strongest co-click first: {recs:?}");
    }

    #[test]
    fn already_clicked_items_excluded() {
        let g = setup();
        let r = recommender(&g);
        let recs = r.recommend(UserId(0), 5);
        assert!(recs.iter().all(|&(v, _)| v != ItemId(0) && v != ItemId(2)));
    }

    #[test]
    fn would_see_matches_recommend() {
        let g = setup();
        let r = recommender(&g);
        assert!(r.would_see(UserId(0), ItemId(1), 5));
        assert!(!r.would_see(UserId(0), ItemId(2), 5));
    }

    #[test]
    fn user_without_history_gets_nothing() {
        let g = setup();
        let r = recommender(&g);
        // u2 clicked i0 and i2; a user id past the population: use u1's
        // perspective instead — check an absent user id is graceful? ids
        // must exist in the graph; use a present user with degenerate
        // history.
        let recs = r.recommend(UserId(2), 5);
        // i0's list contains i1 and i2; i2 removed (clicked) → only i1.
        assert_eq!(
            recs.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            vec![ItemId(1)]
        );
    }

    #[test]
    fn attack_puts_target_in_front_of_hot_clickers() {
        // The end-to-end manipulation: before the attack a hot-item clicker
        // never sees the target; after workers forge co-clicks, they do.
        let mut b = GraphBuilder::new();
        // Victim u0 clicked hot i0.
        b.add_click(UserId(0), ItemId(0), 3);
        // Organic co-click structure.
        for u in 1..30u32 {
            b.add_click(UserId(u), ItemId(0), 1);
            b.add_click(UserId(u), ItemId(1 + u % 3), 1);
        }
        let before = b.clone().build();
        let r = recommender(&before);
        assert!(!r.would_see(UserId(0), ItemId(50), 5));

        // 10 workers ride i0 onto target i50.
        for w in 100..110u32 {
            b.add_click(UserId(w), ItemId(0), 1);
            b.add_click(UserId(w), ItemId(50), 13);
        }
        let after = b.build();
        let r = recommender(&after);
        assert!(
            r.would_see(UserId(0), ItemId(50), 5),
            "attack bought the target a slot in the victim's recommendations"
        );
    }
}
