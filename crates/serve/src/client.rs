//! A blocking client for the serve wire protocol.
//!
//! One request/response pair per call on a single persistent connection.
//! The typed helpers ([`query_risk`](Client::query_risk),
//! [`checkpoint`](Client::checkpoint), …) unwrap the matching response
//! variant and surface anything else — including a server-side
//! [`Error`](Response::Error) frame — as a [`WireError`], so callers that
//! only care about the happy path stay one-liners. Backpressure is the one
//! deliberate exception: [`ingest`](Client::ingest) returns the
//! [`IngestOutcome`] so the caller decides its own retry policy, and
//! [`ingest_blocking`](Client::ingest_blocking) packages the obvious one
//! (bounded exponential backoff).

use crate::retry::{ClientStats, RetryPolicy};
use crate::wire::{read_frame, write_frame, Request, Response, ShardStatus, WireError};
use ricd_core::incremental::Checkpoint;
use ricd_core::riskview::RiskVerdict;
use ricd_graph::{ItemId, UserId};
use ricd_obs::MetricsSnapshot;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// How one [`Client::ingest`] call was answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The batch is in the server's queue.
    Accepted {
        /// Records queued.
        records: usize,
    },
    /// Backpressure: the queue was full, the batch was **not** taken, and
    /// the caller owns the retry.
    Backpressure {
        /// The server's queue capacity, for pacing.
        queue_capacity: usize,
    },
}

/// Risk verdicts for one [`Client::query_risk`] call.
#[derive(Clone, Debug, PartialEq)]
pub struct RiskReport {
    /// The answering view's epoch (0 = nothing detected/published yet).
    pub epoch: u64,
    /// Per-user verdicts, in request order.
    pub users: Vec<(UserId, RiskVerdict)>,
    /// Per-item verdicts, in request order.
    pub items: Vec<(ItemId, RiskVerdict)>,
    /// Detected groups in the view.
    pub groups: usize,
    /// `true` when the answer is partial (some shard was not `Up`).
    pub degraded: bool,
    /// Shards whose state is missing from this answer entirely.
    pub missing_shards: Vec<u32>,
}

/// One recommendation answer, with degradation context.
#[derive(Clone, Debug, PartialEq)]
pub struct Recommendation {
    /// The answering view's epoch.
    pub epoch: u64,
    /// Ranked `(item, score)` pairs.
    pub items: Vec<(ItemId, f32)>,
    /// `true` when the owning shard was not fully `Up`.
    pub degraded: bool,
}

/// Topology health from one [`Client::status`] call.
#[derive(Clone, Debug, PartialEq)]
pub struct StatusReport {
    /// The published quorum epoch watermark.
    pub epoch: u64,
    /// Live shards required for the epoch watermark to advance.
    pub quorum: u32,
    /// `true` while any shard is not `Up`.
    pub degraded: bool,
    /// Per-shard health, in shard order.
    pub shards: Vec<ShardStatus>,
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, req)?;
        read_frame(&mut self.stream)
    }

    fn expect<T>(
        &mut self,
        req: &Request,
        pick: impl FnOnce(Response) -> Result<T, Response>,
    ) -> Result<T, WireError> {
        match self.request(req)? {
            Response::Error { message } => Err(WireError::Malformed(format!("server: {message}"))),
            resp => pick(resp)
                .map_err(|other| WireError::Malformed(format!("unexpected response: {other:?}"))),
        }
    }

    /// Submits one batch; see [`IngestOutcome`] for the backpressure
    /// contract.
    pub fn ingest(
        &mut self,
        seq: u64,
        records: Vec<(UserId, ItemId, u32)>,
    ) -> Result<IngestOutcome, WireError> {
        self.expect(&Request::Ingest { seq, records }, |resp| match resp {
            Response::Ingested { records, .. } => Ok(IngestOutcome::Accepted { records }),
            Response::Rejected { queue_capacity, .. } => {
                Ok(IngestOutcome::Backpressure { queue_capacity })
            }
            other => Err(other),
        })
    }

    /// Submits one **timestamped** batch; same backpressure contract as
    /// [`ingest`](Client::ingest). The per-record event-time tick feeds the
    /// server's `serve.event_ts` / `serve.timed_*` metrics.
    pub fn ingest_timed(
        &mut self,
        seq: u64,
        records: Vec<(UserId, ItemId, u32, u64)>,
    ) -> Result<IngestOutcome, WireError> {
        self.expect(&Request::IngestTimed { seq, records }, |resp| match resp {
            Response::Ingested { records, .. } => Ok(IngestOutcome::Accepted { records }),
            Response::Rejected { queue_capacity, .. } => {
                Ok(IngestOutcome::Backpressure { queue_capacity })
            }
            other => Err(other),
        })
    }

    /// Submits one batch with the default [`RetryPolicy`]: capped
    /// exponential backoff with deterministic seeded jitter and an overall
    /// deadline, retrying rejected sends until accepted or the deadline
    /// lapses. Returns the attempt/rejection/elapsed accounting.
    pub fn ingest_blocking(
        &mut self,
        seq: u64,
        records: &[(UserId, ItemId, u32)],
    ) -> Result<ClientStats, WireError> {
        self.ingest_blocking_with(seq, records, &RetryPolicy::default())
    }

    /// [`ingest_blocking`](Client::ingest_blocking) under an explicit
    /// retry policy. A lapsed deadline surfaces as a `TimedOut` I/O error
    /// so callers can distinguish it from wire failures.
    pub fn ingest_blocking_with(
        &mut self,
        seq: u64,
        records: &[(UserId, ItemId, u32)],
        policy: &RetryPolicy,
    ) -> Result<ClientStats, WireError> {
        let mut backoff = policy.start();
        loop {
            match self.ingest(seq, records.to_vec())? {
                IngestOutcome::Accepted { .. } => return Ok(backoff.stats()),
                IngestOutcome::Backpressure { .. } => {
                    backoff.record_rejection();
                    if !backoff.sleep() {
                        return Err(WireError::Io(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "ingest deadline exceeded after {} attempts",
                                backoff.stats().attempts
                            ),
                        )));
                    }
                }
            }
        }
    }

    /// Risk verdicts for `users` and `items` against the current view.
    pub fn query_risk(
        &mut self,
        users: Vec<UserId>,
        items: Vec<ItemId>,
    ) -> Result<RiskReport, WireError> {
        self.expect(&Request::QueryRisk { users, items }, |resp| match resp {
            Response::Risk {
                epoch,
                users,
                items,
                groups,
                degraded,
                missing_shards,
            } => Ok(RiskReport {
                epoch,
                users,
                items,
                groups,
                degraded,
                missing_shards,
            }),
            other => Err(other),
        })
    }

    /// Top-`n` cleaned recommendations for `user`, with the answering
    /// view's epoch and degradation flag.
    pub fn recommend(&mut self, user: UserId, n: usize) -> Result<Recommendation, WireError> {
        self.expect(&Request::Recommend { user, n }, |resp| match resp {
            Response::Recommendation {
                epoch,
                items,
                degraded,
            } => Ok(Recommendation {
                epoch,
                items,
                degraded,
            }),
            other => Err(other),
        })
    }

    /// Per-shard health, restart counts, and the quorum epoch watermark.
    pub fn status(&mut self) -> Result<StatusReport, WireError> {
        self.expect(&Request::Status, |resp| match resp {
            Response::Status {
                epoch,
                quorum,
                degraded,
                shards,
            } => Ok(StatusReport {
                epoch,
                quorum,
                degraded,
                shards,
            }),
            other => Err(other),
        })
    }

    /// The server's metrics snapshot (`count_only` strips timing fields).
    pub fn metrics(&mut self, count_only: bool) -> Result<MetricsSnapshot, WireError> {
        self.expect(&Request::Metrics { count_only }, |resp| match resp {
            Response::Metrics(m) => Ok(m),
            other => Err(other),
        })
    }

    /// A consistent checkpoint covering every batch accepted before this
    /// call (single-state servers answer the checkpoint inline).
    pub fn checkpoint(&mut self) -> Result<Checkpoint, WireError> {
        self.expect(&Request::Checkpoint, |resp| match resp {
            Response::CheckpointTaken(c) => Ok(c),
            other => Err(other),
        })
    }

    /// A coordinated checkpoint barrier against a sharded router: every
    /// shard's file plus the `manifest.json` commit point. Returns the
    /// manifest path (empty when the router has no checkpoint directory)
    /// and the quorum epoch at the barrier.
    pub fn checkpoint_manifest(&mut self) -> Result<(String, u64), WireError> {
        self.expect(&Request::Checkpoint, |resp| match resp {
            Response::ManifestWritten { path, epoch, .. } => Ok((path, epoch)),
            other => Err(other),
        })
    }

    /// Requests a graceful shutdown.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        self.expect(&Request::Shutdown, |resp| match resp {
            Response::ShuttingDown => Ok(()),
            other => Err(other),
        })
    }
}
