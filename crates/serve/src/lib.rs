#![warn(missing_docs)]

//! # ricd-serve — the online detection service
//!
//! The paper's framework ultimately runs *in front of* a recommender: the
//! case study (Section VII) measures detection by the incorrect
//! recommendations it prevents. This crate is that deployment shape — a
//! long-running daemon wrapping the [`StreamingDetector`] behind a
//! loopback wire protocol:
//!
//! * **Streaming ingest** with explicit backpressure: click batches enter
//!   a bounded queue; a full queue rejects (never buffers unboundedly),
//!   and at-least-once redelivery is safe because the detector
//!   deduplicates by batch sequence number.
//! * **Risk queries** against an epoch-snapshotted [`RiskView`]: a
//!   background worker runs seeded incremental detection on a cadence and
//!   swaps complete immutable snapshots into place, so queries never block
//!   on (or observe a torn state of) detection.
//! * **Clean recommendation serving**: each snapshot carries an I2I index
//!   rebuilt with the flagged users' wedges subtracted — the
//!   "protect users from incorrect recommendations" loop, served live.
//! * **Checkpoint/resume**: a checkpoint request serializes after every
//!   previously accepted batch and reuses the [`Checkpoint`] crash-recovery
//!   format, so a restarted server resumes the stream where it left off.
//! * **Supervised multi-shard tier** ([`start_router`]): a routing
//!   front-end fans ingest out to N supervised shard workers
//!   (user-hash partitioned with halo-replicated item histories), keeps a
//!   replay log per shard so a crashed worker restarts from its last
//!   coordinated checkpoint with **zero accepted-batch loss**, probes
//!   health on a cadence ([`supervisor`]), serves *degraded* partial
//!   answers while shards are down, and commits coordinated
//!   `manifest.json` checkpoints ([`manifest`]) a whole process can
//!   resume from.
//!
//! Everything is std-only (threads + `TcpListener`); the protocol is
//! length-prefixed JSON ([`wire`]).
//!
//! ```no_run
//! use ricd_serve::prelude::*;
//! use ricd_core::prelude::*;
//! use ricd_engine::WorkerPool;
//! use ricd_graph::{ItemId, UserId};
//!
//! let state = ServeState::new(
//!     ServeConfig::default(),
//!     RicdPipeline::new(RicdParams::default()).with_pool(WorkerPool::new(2)),
//! );
//! let handle = ricd_serve::server::start(state, "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.ingest_blocking(0, &[(UserId(1), ItemId(2), 3)]).unwrap();
//! let report = client.query_risk(vec![UserId(1)], vec![]).unwrap();
//! assert!(!report.users[0].1.flagged);
//! client.shutdown().unwrap();
//! handle.join();
//! ```
//!
//! [`StreamingDetector`]: ricd_core::incremental::StreamingDetector
//! [`RiskView`]: ricd_core::riskview::RiskView
//! [`Checkpoint`]: ricd_core::incremental::Checkpoint

pub mod client;
pub mod manifest;
pub mod retry;
pub mod router;
pub mod server;
pub mod shared;
pub mod state;
pub mod supervisor;
pub mod wire;

pub use client::{Client, IngestOutcome, Recommendation, RiskReport, StatusReport};
pub use manifest::{Manifest, ManifestEntry, MANIFEST_FILE, MANIFEST_VERSION};
pub use retry::{ClientStats, RetryPolicy};
pub use router::{Router, RouterConfig};
pub use server::{start, start_router, RouterHandle, ServerHandle};
pub use shared::SnapshotCell;
pub use state::{ServeConfig, ServeSnapshot, ServeState};
pub use supervisor::{ShardHealth, SupervisorConfig};
pub use wire::{Request, Response, ShardStatus, WireError, MAX_FRAME_LEN};

/// Commonly used serving types.
pub mod prelude {
    pub use crate::client::{Client, IngestOutcome, Recommendation, RiskReport, StatusReport};
    pub use crate::retry::{ClientStats, RetryPolicy};
    pub use crate::router::{Router, RouterConfig};
    pub use crate::server::{start, start_router, RouterHandle, ServerHandle};
    pub use crate::state::{ServeConfig, ServeSnapshot, ServeState};
    pub use crate::supervisor::{ShardHealth, SupervisorConfig};
    pub use crate::wire::{Request, Response, ShardStatus, WireError};
}
