//! The coordinated-checkpoint manifest: one atomically written
//! `manifest.json` naming every shard's checkpoint file and the sequence /
//! epoch it covers.
//!
//! The durability contract mirrors the single-process checkpoint (PR 4)
//! but adds coordination: a sharded checkpoint is only usable if **every**
//! shard's file belongs to the same barrier, so the manifest — not the
//! individual files — is the commit point. Files are written first (each
//! via temp-file + rename, so a crash never leaves a torn file under a
//! live name), the manifest last; a restart that finds a manifest may
//! trust every file it names, and a crash between file writes and the
//! manifest rename simply leaves the previous manifest in force.

use ricd_core::incremental::Checkpoint;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// The manifest file's name inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One shard's entry in the manifest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Shard index.
    pub shard: u32,
    /// Checkpoint file name, relative to the manifest's directory.
    pub file: String,
    /// The shard's next expected local batch sequence after this
    /// checkpoint (everything below is durably covered).
    pub next_seq: u64,
    /// The shard's view epoch at the checkpoint barrier.
    pub epoch: u64,
}

/// A coordinated checkpoint across every shard of one serving topology.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Shard count the topology was running with. A manifest can only
    /// resume a topology of the same width — the user-hash partition is
    /// a function of this.
    pub shards: u32,
    /// The user-hash seed the router partitioned with.
    pub hash_seed: u64,
    /// The quorum epoch watermark at the barrier.
    pub epoch: u64,
    /// The router's next expected **global** batch sequence at the
    /// barrier — restored so at-least-once redeliveries of pre-barrier
    /// batches stay idempotent across a full process restart.
    pub next_global_seq: u64,
    /// Per-shard entries, in shard order, one per shard.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// The conventional checkpoint file name for `shard`.
    pub fn shard_file(shard: u32) -> String {
        format!("shard-{shard}.ckpt.json")
    }

    /// Writes `who`'s checkpoint file atomically (temp + rename) into
    /// `dir`, returning the relative file name recorded in the manifest.
    pub fn write_shard_checkpoint(dir: &Path, shard: u32, ckpt: &Checkpoint) -> io::Result<String> {
        std::fs::create_dir_all(dir)?;
        let name = Self::shard_file(shard);
        let json = serde_json::to_string(ckpt)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_atomic(&dir.join(&name), json.as_bytes())?;
        Ok(name)
    }

    /// Writes the manifest atomically into `dir`, committing the barrier.
    /// Returns the manifest's path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let path = dir.join(MANIFEST_FILE);
        write_atomic(&path, json.as_bytes())?;
        Ok(path)
    }

    /// Loads and validates a manifest from `path` (a `manifest.json` or a
    /// directory containing one).
    pub fn load(path: &Path) -> io::Result<Self> {
        let path = if path.is_dir() {
            path.join(MANIFEST_FILE)
        } else {
            path.to_path_buf()
        };
        let text = std::fs::read_to_string(&path)?;
        let m: Manifest = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        m.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(m)
    }

    /// Loads the checkpoint a manifest entry names, resolved against the
    /// manifest's directory `dir`.
    pub fn load_shard_checkpoint(dir: &Path, entry: &ManifestEntry) -> io::Result<Checkpoint> {
        let text = std::fs::read_to_string(dir.join(&entry.file))?;
        serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Structural validity: version, one entry per shard, in shard order.
    pub fn validate(&self) -> Result<(), String> {
        if self.version != MANIFEST_VERSION {
            return Err(format!(
                "manifest version {} (this build reads {MANIFEST_VERSION})",
                self.version
            ));
        }
        if self.entries.len() != self.shards as usize {
            return Err(format!(
                "manifest names {} entries for {} shards",
                self.entries.len(),
                self.shards
            ));
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.shard != i as u32 {
                return Err(format!("entry {i} claims shard {}", e.shard));
            }
        }
        Ok(())
    }
}

/// Write-then-rename so a crash mid-write never corrupts the live file.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ricd-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn checkpoint() -> Checkpoint {
        Checkpoint {
            records: vec![],
            heavy_pairs: vec![],
            groups: vec![],
            next_seq: 5,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let f0 = Manifest::write_shard_checkpoint(&dir, 0, &checkpoint()).unwrap();
        let f1 = Manifest::write_shard_checkpoint(&dir, 1, &checkpoint()).unwrap();
        let m = Manifest {
            version: MANIFEST_VERSION,
            shards: 2,
            hash_seed: 0x5eed_5a4d,
            epoch: 7,
            next_global_seq: 11,
            entries: vec![
                ManifestEntry {
                    shard: 0,
                    file: f0,
                    next_seq: 5,
                    epoch: 7,
                },
                ManifestEntry {
                    shard: 1,
                    file: f1,
                    next_seq: 5,
                    epoch: 8,
                },
            ],
        };
        let path = m.save(&dir).unwrap();
        assert!(path.ends_with(MANIFEST_FILE));
        // Load via the file and via the directory.
        assert_eq!(Manifest::load(&path).unwrap(), m);
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        let ckpt = Manifest::load_shard_checkpoint(&dir, &back.entries[1]).unwrap();
        assert_eq!(ckpt.next_seq, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_residue_after_save() {
        let dir = temp_dir("tmp-residue");
        let m = Manifest {
            version: MANIFEST_VERSION,
            shards: 0,
            hash_seed: 1,
            epoch: 0,
            next_global_seq: 0,
            entries: vec![],
        };
        m.save(&dir).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validation_rejects_inconsistent_manifests() {
        let mut m = Manifest {
            version: MANIFEST_VERSION,
            shards: 2,
            hash_seed: 1,
            epoch: 0,
            next_global_seq: 0,
            entries: vec![ManifestEntry {
                shard: 0,
                file: "shard-0.ckpt.json".into(),
                next_seq: 0,
                epoch: 0,
            }],
        };
        assert!(m.validate().is_err(), "entry count mismatch");
        m.entries.push(ManifestEntry {
            shard: 7,
            file: "x".into(),
            next_seq: 0,
            epoch: 0,
        });
        assert!(m.validate().is_err(), "out-of-order shard index");
        m.entries[1].shard = 1;
        assert!(m.validate().is_ok());
        m.version = 99;
        assert!(m.validate().is_err(), "unknown version");
    }
}
