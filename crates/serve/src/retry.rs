//! Capped exponential backoff with deterministic seeded jitter and an
//! overall deadline — the one retry discipline every blocking path in the
//! serve tier shares: client-side ingest retries, the supervisor's shard
//! restart delays, and the router's coordinated-checkpoint waits.
//!
//! Jitter is seeded (SplitMix64, the same mixer the shard planner hashes
//! with) rather than sampled from the OS so a failing run replays exactly:
//! two processes given the same seed sleep the same schedule. Each sleep
//! draws from `[backoff/2, backoff)` — half deterministic floor, half
//! seeded spread — which desynchronizes N retriers hammering one queue
//! without ever sleeping longer than the cap.

use std::time::{Duration, Instant};

/// SplitMix64 — stable across platforms, one step per draw.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A retry policy: exponential backoff from `base` doubling to `cap`, with
/// seeded jitter and an overall `deadline` after which the caller gives up.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// First sleep.
    pub base: Duration,
    /// Sleeps never exceed this.
    pub cap: Duration,
    /// Total time budget across every attempt; `None` retries forever.
    pub deadline: Option<Duration>,
    /// Seed for the jitter stream (same seed → same sleep schedule).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(64),
            deadline: Some(Duration::from_secs(60)),
            jitter_seed: 0x5eed_5a4d,
        }
    }
}

impl RetryPolicy {
    /// The default policy with a different overall deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Starts a backoff sequence under this policy.
    pub fn start(&self) -> Backoff {
        Backoff {
            policy: *self,
            current: self.base,
            jitter: self.jitter_seed,
            started: Instant::now(),
            attempts: 0,
            rejections: 0,
        }
    }
}

/// One in-flight backoff sequence.
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    current: Duration,
    jitter: u64,
    started: Instant,
    attempts: u64,
    rejections: u64,
}

impl Backoff {
    /// Attempts made so far (one per [`sleep`](Self::sleep) call).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Time elapsed since the sequence started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether the overall deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.policy
            .deadline
            .is_some_and(|d| self.started.elapsed() >= d)
    }

    /// Records one backpressure rejection for the accounting in
    /// [`stats`](Self::stats).
    pub fn record_rejection(&mut self) {
        self.rejections += 1;
    }

    /// The sequence's accounting so far. `attempts` counts wire
    /// round-trips: every recorded rejection plus the final success.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            attempts: self.rejections + 1,
            rejections: self.rejections,
            elapsed_nanos: self.started.elapsed().as_nanos() as u64,
        }
    }

    /// The next sleep duration (jittered, capped), advancing the sequence
    /// without actually sleeping — exposed so tests can pin the schedule.
    pub fn next_delay(&mut self) -> Duration {
        self.attempts += 1;
        let backoff = self.current;
        self.current = (self.current * 2).min(self.policy.cap);
        let nanos = backoff.as_nanos() as u64;
        if nanos < 2 {
            return backoff;
        }
        let half = nanos / 2;
        Duration::from_nanos(half + splitmix64(&mut self.jitter) % half)
    }

    /// Sleeps for the next jittered backoff, clipped so the sleep never
    /// overshoots the overall deadline. Returns `false` once the deadline
    /// is exhausted (the caller should stop retrying).
    pub fn sleep(&mut self) -> bool {
        if self.deadline_exceeded() {
            return false;
        }
        let mut delay = self.next_delay();
        if let Some(deadline) = self.policy.deadline {
            let left = deadline.saturating_sub(self.started.elapsed());
            if left.is_zero() {
                return false;
            }
            delay = delay.min(left);
        }
        std::thread::sleep(delay);
        true
    }
}

/// What a blocking client call did to get its answer: surfaced so callers
/// (and the bench's faulted row) can see retry pressure instead of just
/// waiting through it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Wire round-trips made (1 = first try succeeded).
    pub attempts: u64,
    /// How many of those were answered with backpressure `Rejected`.
    pub rejections: u64,
    /// Total wall-clock time spent, sleeps included, in nanoseconds.
    pub elapsed_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let policy = RetryPolicy {
            base: Duration::from_millis(4),
            cap: Duration::from_millis(32),
            deadline: None,
            jitter_seed: 42,
        };
        let a: Vec<_> = {
            let mut b = policy.start();
            (0..6).map(|_| b.next_delay()).collect()
        };
        let b: Vec<_> = {
            let mut b = policy.start();
            (0..6).map(|_| b.next_delay()).collect()
        };
        assert_eq!(a, b, "same seed, same schedule");
        let c: Vec<_> = {
            let mut b = RetryPolicy {
                jitter_seed: 43,
                ..policy
            }
            .start();
            (0..6).map(|_| b.next_delay()).collect()
        };
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn delays_stay_within_half_to_full_backoff_and_cap() {
        let policy = RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(16),
            deadline: None,
            jitter_seed: 7,
        };
        let mut b = policy.start();
        let mut expected = policy.base;
        for _ in 0..10 {
            let d = b.next_delay();
            assert!(
                d >= expected / 2,
                "jitter floor: {d:?} < {:?}",
                expected / 2
            );
            assert!(d < expected, "jitter ceiling: {d:?} >= {expected:?}");
            expected = (expected * 2).min(policy.cap);
        }
        assert_eq!(b.attempts(), 10);
    }

    #[test]
    fn deadline_stops_the_sequence() {
        let mut b = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            deadline: Some(Duration::ZERO),
            jitter_seed: 1,
        }
        .start();
        assert!(b.deadline_exceeded());
        assert!(!b.sleep(), "zero deadline refuses to sleep");
    }

    #[test]
    fn sleep_clips_to_the_remaining_deadline() {
        let mut b = RetryPolicy {
            base: Duration::from_millis(500),
            cap: Duration::from_secs(5),
            deadline: Some(Duration::from_millis(30)),
            jitter_seed: 9,
        }
        .start();
        let t0 = Instant::now();
        while b.sleep() {}
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(300),
            "sleeps clipped to the ~30ms budget, not the 250ms+ backoff: {elapsed:?}"
        );
    }
}
