//! The multi-shard router: fans routed ingest to N supervised shard
//! workers and merges their views for queries.
//!
//! **Partition + halo.** Users are hash-partitioned with the *same*
//! SplitMix64 assignment the offline shard planner uses
//! ([`ricd_graph::user_shard`]). Pure user partitioning would split an
//! attack group whose workers hash to different shards below the `k₁`
//! floor, so the router mirrors the planner's boundary-item replication
//! online: it keeps every item's cumulative per-user click counts and the
//! set of shards *interested* in the item (shards owning at least one of
//! its clickers). The first time a shard gains interest in an item, the
//! item's aggregated history is backfilled into that shard's sub-batch;
//! from then on every click on the item fans out to all interested
//! shards. Aggregation is lossless for the detector — the graph builder
//! merges duplicate `(user, item)` pairs by summing clicks, so one
//! backfilled record per clicker reproduces the exact neighborhood — and
//! it bounds the routing table at O(distinct `(user, item)` pairs) rather
//! than O(total clicks). Each shard therefore sees the complete
//! neighborhood of every item its users touch — the planner's soundness
//! argument carries over, and any group containing a shard's user is
//! detected *in full* by that shard. Queries merge per-shard views with
//! [`RiskView::merged`], which deduplicates the halo-replicated groups.
//!
//! **Zero accepted-batch loss.** An accepted batch's sub-batches are
//! appended to per-shard replay logs *before* the accept reply is
//! written; logs are truncated only when a coordinated checkpoint durably
//! covers them. A shard crash therefore loses at most un-acked work: the
//! supervisor restores the shard from its last checkpoint and the
//! replacement worker replays the retained log, deduplicated by local
//! sequence number.
//!
//! **Degradation contract.** While any shard is not `Up`, risk queries
//! are answered from the remaining live views and tagged
//! `degraded: true` with the missing shard list; recommendations for a
//! down shard's user return an empty degraded list (the owner's snapshot
//! cell holds its last published view during `Recovering`, so those stay
//! answerable). Ingest keeps flowing for live shards; a batch touching a
//! down shard still buffers into its replay log up to
//! [`buffer_per_shard`](RouterConfig::buffer_per_shard) batches, after
//! which the whole batch gets an explicit backpressure `Rejected` (PR 4's
//! contract — the router never buffers unboundedly). The published epoch
//! is a **quorum watermark**: it advances to `min(epoch of Up shards)`
//! only while at least `⌊N/2⌋+1` shards are `Up`, and freezes (never
//! regresses) below quorum.

use crate::manifest::{Manifest, ManifestEntry, MANIFEST_VERSION};
use crate::state::{ServeConfig, ServeMetrics, ServeSnapshot};
use crate::supervisor::{
    ShardHealth, ShardSlot, ShardStateFactory, Supervisor, SupervisorConfig, SupervisorMetrics,
};
use crate::wire::{Request, Response, ShardStatus};
use ricd_core::riskview::RiskView;
use ricd_core::RicdParams;
use ricd_engine::{ServeFaultInjector, ServeFaultPlan};
use ricd_graph::{user_shard, ItemId, UserId};
use ricd_obs::{Counter, Gauge, MetricsRegistry};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Routed-runtime configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Shard count (1..=64 — interest sets are a u64 bitmask).
    pub shards: usize,
    /// Detection parameters every shard runs with.
    pub params: RicdParams,
    /// Per-shard serving template (swap cadence, queue knobs, io timeout).
    /// `metrics_prefix` is overridden per shard.
    pub serve: ServeConfig,
    /// Detection worker threads per shard.
    pub workers_per_shard: usize,
    /// Max *unprocessed* batches buffered per shard before the router
    /// answers `Rejected` (explicit backpressure, incl. for down shards).
    pub buffer_per_shard: usize,
    /// User-hash seed (defaults to the shard planner's).
    pub hash_seed: u64,
    /// Supervision knobs (probe cadence, stall budget, restart backoff).
    pub supervisor: SupervisorConfig,
    /// Where coordinated checkpoints (per-shard files + `manifest.json`)
    /// are written. `None` keeps checkpoints in memory only — still
    /// enough for worker-crash recovery, not for process-crash recovery.
    pub checkpoint_dir: Option<PathBuf>,
    /// Auto-checkpoint after this many accepted batches (0 = manual
    /// only). The cadence is what bounds replay-log memory.
    pub checkpoint_every_batches: u64,
    /// Chaos plan armed into the shard workers (empty in production).
    pub fault_plan: ServeFaultPlan,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            params: RicdParams::default(),
            serve: ServeConfig::default(),
            workers_per_shard: 1,
            buffer_per_shard: 64,
            hash_seed: ricd_graph::shard::DEFAULT_HASH_SEED,
            supervisor: SupervisorConfig::default(),
            checkpoint_dir: None,
            checkpoint_every_batches: 32,
            fault_plan: ServeFaultPlan::none(),
        }
    }
}

/// One item's routing entry: its cumulative per-user click counts and the
/// shards interested in it. A `BTreeMap` keeps backfill order (and thus
/// sub-batch construction) deterministic across runs.
struct ItemEntry {
    history: BTreeMap<UserId, u32>,
    interest: u64,
}

/// Router-side mutable routing state, serialized under one lock so
/// sub-batch construction is deterministic in batch arrival order.
struct RouteTable {
    items: HashMap<ItemId, ItemEntry>,
    /// Global-sequence dedup: batches below this were already accepted
    /// (at-least-once redelivery is acked idempotently, never re-routed).
    next_global_seq: u64,
    accepted_since_checkpoint: u64,
}

/// Router-level metrics beyond the aggregate `serve.*` family.
struct RouterMetrics {
    halo_records: Counter,
    degraded_queries: Counter,
    checkpoints: Counter,
    quorum: Gauge,
    live_shards: Gauge,
}

impl RouterMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        Self {
            halo_records: registry.counter("serve.router.halo_records"),
            degraded_queries: registry.counter("serve.router.degraded_queries"),
            checkpoints: registry.counter("serve.router.checkpoints"),
            quorum: registry.gauge("serve.router.quorum"),
            live_shards: registry.gauge("serve.router.live_shards"),
        }
    }
}

/// The routed serve runtime: everything the connection pool and the
/// supervisor share.
pub struct Router {
    cfg: RouterConfig,
    slots: Vec<Arc<ShardSlot>>,
    registry: MetricsRegistry,
    /// Aggregate client-visible metrics, registered under the plain
    /// `serve.` prefix so dashboards don't care whether a daemon is
    /// monolithic or sharded.
    agg: ServeMetrics,
    rm: RouterMetrics,
    route: Mutex<RouteTable>,
    /// Serializes coordinated checkpoints: two interleaved runs could
    /// otherwise commit an older barrier's mirrors after a newer one
    /// already truncated the replay logs past them.
    ckpt_lock: Mutex<()>,
    /// A cadence checkpoint is in flight on its own thread; don't stack
    /// another behind it.
    cadence_inflight: AtomicBool,
    /// Handle of the in-flight cadence thread. Joined during drain so a
    /// cadence checkpoint's file writes can never outlive the topology
    /// (a resuming process may already be reading the checkpoint dir).
    cadence_join: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The quorum epoch watermark (monotone).
    epoch: AtomicU64,
    shutdown: Arc<AtomicBool>,
}

impl Router {
    /// Builds the router and its shard slots. `initial` carries per-shard
    /// checkpoints when resuming from a manifest.
    fn build(cfg: RouterConfig, registry: MetricsRegistry) -> Arc<Self> {
        assert!(
            (1..=64).contains(&cfg.shards),
            "shard count must be in 1..=64 (got {})",
            cfg.shards
        );
        let slots = Supervisor::new_slots(cfg.shards);
        let agg = ServeMetrics::register(&registry, "serve");
        let rm = RouterMetrics::register(&registry);
        rm.quorum.set(Self::quorum_of(cfg.shards) as i64);
        rm.live_shards.set(cfg.shards as i64);
        Arc::new(Self {
            cfg,
            slots,
            registry,
            agg,
            rm,
            route: Mutex::new(RouteTable {
                items: HashMap::new(),
                next_global_seq: 0,
                accepted_since_checkpoint: 0,
            }),
            ckpt_lock: Mutex::new(()),
            cadence_inflight: AtomicBool::new(false),
            cadence_join: Mutex::new(None),
            epoch: AtomicU64::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A fresh router.
    pub fn new(cfg: RouterConfig, registry: MetricsRegistry) -> Arc<Self> {
        Self::build(cfg, registry)
    }

    fn quorum_of(shards: usize) -> usize {
        shards / 2 + 1
    }

    /// Shards required `Up` before the epoch watermark may advance.
    pub fn quorum(&self) -> usize {
        Self::quorum_of(self.cfg.shards)
    }

    pub(crate) fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    pub(crate) fn agg_metrics(&self) -> &ServeMetrics {
        &self.agg
    }

    pub(crate) fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// The owning shard of `u` under the planner-compatible hash.
    pub fn owner_of(&self, u: UserId) -> usize {
        user_shard(u, self.cfg.hash_seed, self.cfg.shards)
    }

    /// Routes one accepted batch: splits it into halo-replicated
    /// sub-batches and appends them to the target shards' replay logs.
    /// Two-phase: sub-batches and routing-table mutations are computed on
    /// an overlay first, admission is checked against every target's
    /// backlog, and only then is anything committed — a rejected batch
    /// leaves no trace, so the client's retry re-routes identically.
    pub fn route_batch(&self, seq: u64, records: &[(UserId, ItemId, u32)]) -> Response {
        let mut route = self.route.lock().expect("route table poisoned");
        if seq < route.next_global_seq {
            // At-least-once redelivery of an already-accepted batch:
            // idempotent ack, nothing re-routed.
            return Response::Ingested {
                seq,
                records: records.len(),
            };
        }
        let n = self.cfg.shards;
        let mut subs: Vec<Vec<(UserId, ItemId, u32)>> = vec![Vec::new(); n];
        // Overlay so a rejected batch mutates nothing.
        let mut overlay: HashMap<ItemId, ItemEntry> = HashMap::new();
        let mut halo = 0u64;
        for &(u, i, c) in records {
            let owner = user_shard(u, self.cfg.hash_seed, n);
            let base = route.items.get(&i);
            let entry = overlay.entry(i).or_insert_with(|| ItemEntry {
                history: base.map(|e| e.history.clone()).unwrap_or_default(),
                interest: base.map(|e| e.interest).unwrap_or(0),
            });
            if entry.interest & (1 << owner) == 0 {
                // New interest: backfill the item's aggregated history so
                // the owner sees the complete neighborhood from click one.
                entry.interest |= 1 << owner;
                for (&hu, &hc) in &entry.history {
                    subs[owner].push((hu, i, hc));
                    halo += 1;
                }
            }
            let mut mask = entry.interest;
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                subs[s].push((u, i, c));
                if s != owner {
                    halo += 1;
                }
            }
            let total = entry.history.entry(u).or_insert(0);
            *total = total.saturating_add(c);
        }
        // Admission: every target shard must have replay-log room.
        for (s, sub) in subs.iter().enumerate() {
            if !sub.is_empty()
                && self.slots[s].channel.backlog() >= self.cfg.buffer_per_shard as u64
            {
                self.agg.backpressure_rejected.inc();
                return Response::Rejected {
                    seq,
                    queue_capacity: self.cfg.buffer_per_shard,
                };
            }
        }
        // Commit: overlay into the table, sub-batches into the logs.
        for (i, e) in overlay {
            route.items.insert(i, e);
        }
        for (s, sub) in subs.into_iter().enumerate() {
            if !sub.is_empty() {
                self.slots[s].channel.push(Arc::new(sub));
            }
        }
        route.next_global_seq = seq + 1;
        route.accepted_since_checkpoint += 1;
        self.agg.batches.inc();
        self.agg.records.add(records.len() as u64);
        self.rm.halo_records.add(halo);
        drop(route);
        self.refresh_depth_gauge();
        Response::Ingested {
            seq,
            records: records.len(),
        }
    }

    fn refresh_depth_gauge(&self) {
        let total: u64 = self.slots.iter().map(|s| s.channel.backlog()).sum();
        self.agg.ingest_queue_depth.set(total as i64);
    }

    /// Recomputes the quorum watermark: advances to the minimum `Up`
    /// epoch while quorum holds, freezes otherwise. Monotone by `max`.
    pub(crate) fn refresh_epoch(&self) -> u64 {
        let up: Vec<u64> = self
            .slots
            .iter()
            .filter(|s| s.health() == ShardHealth::Up)
            .map(|s| s.epoch())
            .collect();
        self.rm.live_shards.set(
            self.slots
                .iter()
                .filter(|s| s.health() != ShardHealth::Down)
                .count() as i64,
        );
        if up.len() >= self.quorum() {
            // fetch_max keeps the watermark monotone under concurrent
            // callers (every query refreshes it).
            let candidate = up.into_iter().min().unwrap_or(0);
            self.epoch.fetch_max(candidate, Ordering::SeqCst);
        }
        let e = self.epoch.load(Ordering::SeqCst);
        self.agg.epoch.set(e as i64);
        e
    }

    /// Risk query across every live shard's view, merged and tagged.
    pub fn query_risk(&self, users: Vec<UserId>, items: Vec<ItemId>) -> Response {
        self.agg.queries_risk.inc();
        let epoch = self.refresh_epoch();
        let snaps: Vec<(ShardHealth, Arc<ServeSnapshot>)> = self
            .slots
            .iter()
            .map(|s| (s.health(), s.cell.load()))
            .collect();
        let missing: Vec<u32> = snaps
            .iter()
            .enumerate()
            .filter(|(_, (h, _))| *h == ShardHealth::Down)
            .map(|(i, _)| i as u32)
            .collect();
        let degraded = snaps.iter().any(|(h, _)| *h != ShardHealth::Up);
        if degraded {
            self.rm.degraded_queries.inc();
        }
        let views: Vec<&RiskView> = snaps
            .iter()
            .filter(|(h, _)| *h != ShardHealth::Down)
            .map(|(_, s)| &s.view)
            .collect();
        let merged = RiskView::merged(epoch, &views);
        Response::Risk {
            epoch,
            users: users.into_iter().map(|u| (u, merged.user(u))).collect(),
            items: items.into_iter().map(|v| (v, merged.item(v))).collect(),
            groups: merged.groups().len(),
            degraded,
            missing_shards: missing,
        }
    }

    /// Recommendation from the owning shard's snapshot. A down owner
    /// answers empty + degraded rather than failing the query.
    pub fn recommend(&self, user: UserId, n: usize) -> Response {
        self.agg.queries_recommend.inc();
        let epoch = self.refresh_epoch();
        let slot = &self.slots[self.owner_of(user)];
        let health = slot.health();
        if health == ShardHealth::Down {
            self.rm.degraded_queries.inc();
            return Response::Recommendation {
                epoch,
                items: Vec::new(),
                degraded: true,
            };
        }
        let snap = slot.cell.load();
        Response::Recommendation {
            epoch,
            items: snap.recommend(user, n),
            degraded: health != ShardHealth::Up,
        }
    }

    /// Topology health for `ricd client status`.
    pub fn status(&self) -> Response {
        let epoch = self.refresh_epoch();
        let shards = self
            .slots
            .iter()
            .map(|s| ShardStatus {
                shard: s.shard as u32,
                state: s.health().as_str().into(),
                epoch: s.epoch(),
                backlog: s.channel.backlog(),
                next_seq: s.channel.next_seq(),
                restarts: s.restarts.load(Ordering::SeqCst),
            })
            .collect::<Vec<_>>();
        Response::Status {
            epoch,
            quorum: self.quorum() as u32,
            degraded: shards.iter().any(|s| s.state != "up"),
            shards,
        }
    }

    /// Coordinated checkpoint: barriers every shard at its current log
    /// tail, collects the per-shard checkpoints, writes files + manifest
    /// atomically (when a checkpoint directory is configured), mirrors
    /// them in memory for fast worker restarts, and only then truncates
    /// the replay logs. Barriers ride the shard logs, so they survive a
    /// mid-checkpoint worker crash and are answered after recovery.
    pub fn checkpoint_coordinated(&self, deadline: Duration) -> Result<Response, String> {
        let _serial = self.ckpt_lock.lock().expect("checkpoint lock poisoned");
        // Capture the global cursor and enqueue every barrier under ONE
        // route-lock hold. route_batch appends sub-batches and advances
        // next_global_seq under the same lock, so every batch below the
        // captured cursor reached the replay logs before any barrier —
        // i.e. is covered by every shard checkpoint — and every batch at
        // or above it stays in the logs after truncation. Capturing after
        // the barriers instead would let a batch slip between barrier
        // enqueue and capture: excluded from the checkpoints yet below the
        // manifest cursor, so its redelivery after a process restart would
        // be deduped away — silent loss.
        let (next_global_seq, receivers) = {
            let route = self.route.lock().expect("route table poisoned");
            let receivers: Vec<_> = self
                .slots
                .iter()
                .map(|slot| {
                    let (tx, rx) = std::sync::mpsc::sync_channel(1);
                    slot.channel.request_checkpoint(tx);
                    rx
                })
                .collect();
            (route.next_global_seq, receivers)
        };
        let t0 = Instant::now();
        let mut ckpts = Vec::with_capacity(self.slots.len());
        for (i, rx) in receivers.into_iter().enumerate() {
            let left = deadline.saturating_sub(t0.elapsed());
            match rx.recv_timeout(left) {
                Ok(c) => ckpts.push(c),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(format!("shard {i} missed the checkpoint barrier"))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(format!("shard {i} died before the checkpoint barrier"))
                }
            }
        }
        let epoch = self.refresh_epoch();
        let mut path = String::new();
        if let Some(dir) = &self.cfg.checkpoint_dir {
            let mut entries = Vec::with_capacity(ckpts.len());
            for (i, c) in ckpts.iter().enumerate() {
                let file = Manifest::write_shard_checkpoint(dir, i as u32, c)
                    .map_err(|e| format!("shard {i} checkpoint write: {e}"))?;
                entries.push(ManifestEntry {
                    shard: i as u32,
                    file,
                    next_seq: c.next_seq,
                    epoch: self.slots[i].epoch(),
                });
            }
            let manifest = Manifest {
                version: MANIFEST_VERSION,
                shards: self.cfg.shards as u32,
                hash_seed: self.cfg.hash_seed,
                epoch,
                next_global_seq,
                entries,
            };
            path = manifest
                .save(dir)
                .map_err(|e| format!("manifest write: {e}"))?
                .display()
                .to_string();
        }
        // Commit point passed: mirror + truncate. The monotonicity guard
        // is belt-and-braces under ckpt_lock serialization — a stale
        // checkpoint must never replace a newer mirror whose log prefix
        // was already truncated.
        for (slot, c) in self.slots.iter().zip(&ckpts) {
            let mut mirror = slot.last_checkpoint.lock().expect("slot poisoned");
            if mirror.as_ref().is_none_or(|m| m.next_seq <= c.next_seq) {
                *mirror = Some(c.clone());
                drop(mirror);
                slot.channel.truncate_to(c.next_seq);
            }
        }
        {
            let mut route = self.route.lock().expect("route table poisoned");
            route.accepted_since_checkpoint = 0;
        }
        self.rm.checkpoints.inc();
        Ok(Response::ManifestWritten {
            path,
            shards: self.cfg.shards as u32,
            epoch,
        })
    }

    /// The probe-loop hook: refresh the watermark and gauges, and fire
    /// the checkpoint cadence once every shard is `Up` (a degraded
    /// topology defers the cadence rather than failing it). The cadence
    /// checkpoint runs on its own thread: a shard dying right after the
    /// all-`Up` check would otherwise pin the supervisor inside the
    /// barrier wait for the full deadline, during which no shard is
    /// probed, stall-detected, or restarted — and the barrier itself is
    /// only answered once the supervisor restarts the dead worker.
    pub(crate) fn on_probe(self: &Arc<Self>) {
        self.refresh_epoch();
        self.refresh_depth_gauge();
        if self.cfg.checkpoint_every_batches == 0 {
            return;
        }
        if self.shutdown.load(Ordering::SeqCst) {
            // Draining: start no new cadence checkpoint, and wait out any
            // in-flight one. A detached cadence thread would otherwise
            // write shard files and the manifest *after* the supervisor
            // returned — i.e. while a resuming process is already reading
            // the checkpoint directory — handing it a torn set (old
            // manifest cursor, newer shard files) that double-ingests
            // redelivered batches. Draining workers answer pending
            // barriers before they exit, so this join is bounded by the
            // checkpoint deadline, not the drain.
            let handle = self
                .cadence_join
                .lock()
                .expect("cadence handle poisoned")
                .take();
            if let Some(h) = handle {
                let _ = h.join();
            }
            return;
        }
        let due = {
            let route = self.route.lock().expect("route table poisoned");
            route.accepted_since_checkpoint >= self.cfg.checkpoint_every_batches
        };
        let all_up = self.slots.iter().all(|s| s.health() == ShardHealth::Up);
        if due && all_up && !self.cadence_inflight.swap(true, Ordering::SeqCst) {
            let me = self.clone();
            let spawned = std::thread::Builder::new()
                .name("ricd-ckpt-cadence".into())
                .spawn(move || {
                    let _ = me.checkpoint_coordinated(Duration::from_secs(60));
                    me.cadence_inflight.store(false, Ordering::SeqCst);
                });
            match spawned {
                Ok(h) => {
                    // `cadence_inflight` was false, so any previous thread
                    // has finished its work; joining it is near-instant.
                    let prev = self
                        .cadence_join
                        .lock()
                        .expect("cadence handle poisoned")
                        .replace(h);
                    if let Some(old) = prev {
                        let _ = old.join();
                    }
                }
                Err(_) => self.cadence_inflight.store(false, Ordering::SeqCst),
            }
        }
    }

    /// Handles one wire request against the routed topology.
    pub fn handle(&self, req: Request) -> Response {
        match req {
            Request::Ingest { seq, records } => self.route_batch(seq, &records),
            Request::IngestTimed { seq, records } => {
                // Event time is recorded at the router's aggregate family;
                // shards receive the stripped triples so sub-batch routing,
                // dedup, and checkpoints are identical to untimed ingest.
                self.agg.timed_batches.inc();
                self.agg.timed_records.add(records.len() as u64);
                if let Some(max_ts) = records.iter().map(|&(_, _, _, ts)| ts).max() {
                    let ts = i64::try_from(max_ts).unwrap_or(i64::MAX);
                    if ts > self.agg.event_ts.get() {
                        self.agg.event_ts.set(ts);
                    }
                }
                let stripped: Vec<(UserId, ItemId, u32)> =
                    records.iter().map(|&(u, v, c, _)| (u, v, c)).collect();
                self.route_batch(seq, &stripped)
            }
            Request::QueryRisk { users, items } => self.query_risk(users, items),
            Request::Recommend { user, n } => self.recommend(user, n),
            Request::Metrics { count_only } => {
                let snap = self.registry.snapshot();
                Response::Metrics(if count_only { snap.count_only() } else { snap })
            }
            Request::Checkpoint => {
                match self
                    .checkpoint_coordinated(self.cfg.serve.io_timeout.max(Duration::from_secs(60)))
                {
                    Ok(resp) => resp,
                    Err(e) => Response::Error {
                        message: format!("coordinated checkpoint failed: {e}"),
                    },
                }
            }
            Request::Status => self.status(),
            // The connection layer flips the shutdown flag (and wakes the
            // accept loop) after this response is written.
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    /// Builds the supervisor that owns this router's shard workers. The
    /// caller runs it on a dedicated thread.
    pub(crate) fn supervisor(self: &Arc<Self>) -> Supervisor {
        let me = self.clone();
        Supervisor {
            slots: self.slots.clone(),
            factory: ShardStateFactory {
                params: self.cfg.params,
                registry: self.registry.clone(),
                template: self.cfg.serve.clone(),
                workers_per_shard: self.cfg.workers_per_shard,
            },
            cfg: self.cfg.supervisor.clone(),
            injector: Arc::new(ServeFaultInjector::new(self.cfg.fault_plan.clone())),
            metrics: SupervisorMetrics::register(&self.registry, self.cfg.shards),
            shutdown: self.shutdown.clone(),
            on_probe: Box::new(move || me.on_probe()),
        }
    }

    /// Initial per-shard checkpoints when resuming from `manifest`; also
    /// rebuilds the routing table (item histories + interest sets) from
    /// the restored shard graphs and restores the global-sequence cursor.
    pub(crate) fn load_resume_state(
        self: &Arc<Self>,
        manifest: &Manifest,
        dir: &std::path::Path,
    ) -> Result<Vec<Option<ricd_core::incremental::Checkpoint>>, String> {
        if manifest.shards as usize != self.cfg.shards {
            return Err(format!(
                "manifest is for {} shards, router runs {}",
                manifest.shards, self.cfg.shards
            ));
        }
        if manifest.hash_seed != self.cfg.hash_seed {
            return Err("manifest hash seed differs from the router's".into());
        }
        let mut initial = Vec::with_capacity(self.cfg.shards);
        let mut route = self.route.lock().expect("route table poisoned");
        route.next_global_seq = manifest.next_global_seq;
        for entry in &manifest.entries {
            let ckpt = Manifest::load_shard_checkpoint(dir, entry)
                .map_err(|e| format!("shard {}: {e}", entry.shard))?;
            // A shard file whose cursor disagrees with the manifest entry
            // written alongside it means the set is torn — e.g. another
            // process is still writing checkpoints into this directory.
            // Resuming anyway would mis-place the dedup cut and double- or
            // under-ingest redelivered batches; fail loudly instead.
            if ckpt.next_seq != entry.next_seq {
                return Err(format!(
                    "shard {}: checkpoint file covers sequences below {} but the \
                     manifest records {} — torn checkpoint set (is another process \
                     still writing to this checkpoint directory?)",
                    entry.shard, ckpt.next_seq, entry.next_seq
                ));
            }
            // Fast-forward the shard channel and seed the restart mirror
            // *now*, synchronously — before the accept loop exists — so the
            // first routed batches are numbered after the restored
            // detector's cursor (the supervisor thread starts too late to
            // win that race).
            let slot = &self.slots[entry.shard as usize];
            slot.channel.resume_at(ckpt.next_seq);
            *slot.last_checkpoint.lock().expect("slot poisoned") = Some(ckpt.clone());
            // Interest: a shard's record stream mentions exactly the
            // items it is interested in.
            for &(_, i, _) in &ckpt.records {
                route
                    .items
                    .entry(i)
                    .or_insert_with(|| ItemEntry {
                        history: BTreeMap::new(),
                        interest: 0,
                    })
                    .interest |= 1 << entry.shard;
            }
            initial.push(Some(ckpt));
        }
        // Histories: every interested shard holds an item's *complete*
        // history (the backfill invariant), so take each item's history
        // wholesale from the first shard that mentions it. Checkpoint
        // record streams may repeat a (user, item) pair; counts aggregate
        // additively, same as the graph builder.
        let mut filled: std::collections::HashSet<ItemId> = std::collections::HashSet::new();
        for ckpt in initial.iter().flatten() {
            for &(u, i, c) in &ckpt.records {
                if !filled.contains(&i) {
                    let e = route.items.get_mut(&i).expect("interest pass inserted");
                    let total = e.history.entry(u).or_insert(0);
                    *total = total.saturating_add(c);
                }
            }
            for &(_, i, _) in &ckpt.records {
                filled.insert(i);
            }
        }
        self.epoch.store(manifest.epoch, Ordering::SeqCst);
        Ok(initial)
    }
}
