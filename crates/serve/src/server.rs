//! The daemon: a TCP accept loop, a bounded pool of connection threads,
//! and one background detection worker draining the ingest queue.
//!
//! Threading model (std only — no async runtime):
//!
//! * **One detection worker** owns the [`ServeState`] and is the only
//!   thread that mutates detector state. It drains a bounded MPSC queue of
//!   accepted batches, runs seeded incremental detection, and swaps fresh
//!   [`ServeSnapshot`]s into the shared cell on the configured cadence —
//!   plus whenever the queue runs dry, so a quiet stream converges.
//! * **One connection thread per client**, capped at
//!   [`max_connections`](crate::state::ServeConfig::max_connections);
//!   excess clients get an error frame and are closed. Connection threads
//!   never touch the detector: queries read the snapshot cell, ingests
//!   `try_send` into the queue (a full queue means an explicit
//!   [`Rejected`](crate::wire::Response::Rejected) reply — backpressure is
//!   the client's problem by design, the server never buffers unboundedly).
//! * **Checkpoint requests ride the same queue** as a control message with
//!   a reply channel, so a checkpoint is serialized after every batch
//!   accepted before it — the consistency contract a resumed server relies
//!   on.

use crate::router::{Router, RouterConfig};
use crate::shared::SnapshotCell;
use crate::state::{ServeMetrics, ServeSnapshot, ServeState};
use crate::wire::{read_frame, write_frame, Request, Response, ShardStatus, WireError};
use ricd_core::incremental::Checkpoint;
use ricd_graph::{ItemId, UserId};
use ricd_obs::MetricsRegistry;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection thread blocks waiting for the next frame before
/// re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The request handler behind a connection pool — the monolith's queue
/// front-end or the sharded [`Router`]. The connection machinery (accept
/// loop, per-connection threads, framing, timeouts) is identical either
/// way; only request semantics differ.
trait RequestSink: Send + Sync + 'static {
    fn handle(&self, req: Request) -> Response;
}

/// Everything a connection thread needs besides the sink, cheaply
/// cloneable across connection threads.
#[derive(Clone)]
struct ConnContext {
    sink: Arc<dyn RequestSink>,
    metrics: ServeMetrics,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    io_timeout: Duration,
}

impl ConnContext {
    /// Flips the shutdown flag and wakes the accept loop (which may be
    /// parked in `accept()`) with a throwaway self-connection.
    fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Reads from a non-blocking-ish stream (one with a short read timeout)
/// until data arrives or a frame deadline passes — the slow-loris guard:
/// a peer may idle between frames forever, but once a frame starts it
/// must finish within the connection's I/O budget.
struct DeadlineReader<'a> {
    stream: &'a mut TcpStream,
    deadline: Instant,
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if Instant::now() >= self.deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "frame i/o deadline exceeded",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

/// Work items on the ingest queue.
enum Work {
    /// An accepted click batch.
    Batch {
        seq: u64,
        records: Vec<(UserId, ItemId, u32)>,
    },
    /// An accepted timestamped click batch.
    TimedBatch {
        seq: u64,
        records: Vec<(UserId, ItemId, u32, u64)>,
    },
    /// Take a checkpoint covering every batch queued before this marker and
    /// send it back.
    Checkpoint { reply: SyncSender<Checkpoint> },
}

/// The monolith backend: one detection worker behind a bounded queue.
struct Shared {
    snapshot: Arc<SnapshotCell<ServeSnapshot>>,
    registry: MetricsRegistry,
    metrics: ServeMetrics,
    work_tx: SyncSender<Work>,
    queue_capacity: usize,
}

/// A running server. Dropping the handle does **not** stop the server; call
/// [`shutdown`](ServerHandle::shutdown) and/or [`join`](ServerHandle::join).
///
/// The handle deliberately holds **no** ingest sender — the queue's senders
/// live only in the accept loop and its connection threads, so once those
/// finish the worker's receiver disconnects and the drain terminates.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<ServeState>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown: stop accepting, drain the queue.
    pub fn shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Waits for the accept loop and every connection to finish, then for
    /// the worker to drain the queue, returning the final [`ServeState`]
    /// (so the caller can take a last checkpoint or read final metrics).
    pub fn join(mut self) -> ServeState {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The accept loop owned the last ingest sender; with it gone the
        // worker drains whatever is queued and returns the state.
        self.worker
            .take()
            .expect("worker joined twice")
            .join()
            .expect("detection worker panicked")
    }
}

/// Binds `addr` and starts the daemon: detection worker, accept loop,
/// connection pool. Returns once the listener is bound (the returned
/// handle's [`addr`](ServerHandle::addr) is immediately connectable).
pub fn start(state: ServeState, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let cfg = state.config().clone();
    let (work_tx, work_rx) = std::sync::mpsc::sync_channel::<Work>(cfg.queue_capacity);
    let metrics = state.serve_metrics();
    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        snapshot: state.shared(),
        registry: state.registry().clone(),
        metrics: metrics.clone(),
        work_tx,
        queue_capacity: cfg.queue_capacity,
    });

    let worker = std::thread::Builder::new()
        .name("ricd-serve-worker".into())
        .spawn(move || detection_worker(state, work_rx))?;

    let ctx = ConnContext {
        sink: shared,
        metrics,
        shutdown: shutdown.clone(),
        addr,
        io_timeout: cfg.io_timeout,
    };
    let oneshot = cfg.oneshot;
    let max_connections = cfg.max_connections;
    let accept = std::thread::Builder::new()
        .name("ricd-serve-accept".into())
        .spawn(move || accept_loop(listener, ctx, oneshot, max_connections))?;

    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
        worker: Some(worker),
    })
}

/// A running sharded server (see [`start_router`]). As with
/// [`ServerHandle`], dropping does not stop it — call
/// [`shutdown`](RouterHandle::shutdown) / [`join`](RouterHandle::join).
pub struct RouterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<Vec<ServeState>>>,
    router: Arc<Router>,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routed runtime behind this server, for in-process inspection.
    pub fn router(&self) -> Arc<Router> {
        self.router.clone()
    }

    /// Requests a graceful shutdown: stop accepting, drain every shard's
    /// replay log.
    pub fn shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Waits for the accept loop, connection threads, and every shard
    /// worker to drain, returning the final per-shard states in shard
    /// order (for last checkpoints or equivalence assertions).
    pub fn join(mut self) -> Vec<ServeState> {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shutdown.store(true, Ordering::SeqCst);
        self.supervisor
            .take()
            .expect("supervisor joined twice")
            .join()
            .expect("supervisor panicked")
    }
}

/// Binds `addr` and starts the **sharded** daemon: N supervised shard
/// workers behind a routing front-end. `resume_manifest` resumes every
/// shard from a coordinated checkpoint manifest (see
/// [`crate::manifest::Manifest`]).
pub fn start_router(
    cfg: RouterConfig,
    registry: MetricsRegistry,
    addr: impl ToSocketAddrs,
    resume_manifest: Option<&std::path::Path>,
) -> io::Result<RouterHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let router = Router::new(cfg, registry);
    let initial = match resume_manifest {
        Some(path) => {
            let dir = if path.is_dir() {
                path.to_path_buf()
            } else {
                path.parent().map(|p| p.to_path_buf()).unwrap_or_default()
            };
            let manifest = crate::manifest::Manifest::load(path)?;
            router
                .load_resume_state(&manifest, &dir)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        None => vec![None; router.config().shards],
    };
    let shutdown = router.shutdown_flag();
    let supervisor = router.supervisor();
    let supervisor = std::thread::Builder::new()
        .name("ricd-supervisor".into())
        .spawn(move || supervisor.run(initial))?;

    let ctx = ConnContext {
        sink: router.clone(),
        metrics: router.agg_metrics().clone(),
        shutdown: shutdown.clone(),
        addr,
        io_timeout: router.config().serve.io_timeout,
    };
    let oneshot = router.config().serve.oneshot;
    let max_connections = router.config().serve.max_connections;
    let accept = std::thread::Builder::new()
        .name("ricd-serve-accept".into())
        .spawn(move || accept_loop(listener, ctx, oneshot, max_connections))?;

    Ok(RouterHandle {
        addr,
        shutdown,
        accept: Some(accept),
        supervisor: Some(supervisor),
        router,
    })
}

impl RequestSink for Router {
    fn handle(&self, req: Request) -> Response {
        Router::handle(self, req)
    }
}

/// The detection worker: drains the queue, flushing the view whenever the
/// queue runs dry so every accepted batch is eventually visible to queries.
fn detection_worker(mut state: ServeState, rx: Receiver<Work>) -> ServeState {
    let metrics = state.serve_metrics();
    let handle = |state: &mut ServeState, work: Work| match work {
        Work::Batch { seq, records } => {
            metrics.ingest_queue_depth.add(-1);
            state.ingest(seq, &records);
        }
        Work::TimedBatch { seq, records } => {
            metrics.ingest_queue_depth.add(-1);
            state.ingest_timed(seq, &records);
        }
        Work::Checkpoint { reply } => {
            // A checkpoint is also a *view* barrier: flush first, so after
            // the reply the published snapshot covers every batch the
            // checkpoint covers (queries can trust a post-checkpoint view).
            state.flush();
            let _ = reply.send(state.checkpoint());
        }
    };
    'outer: loop {
        let work = match rx.recv() {
            Ok(w) => w,
            Err(_) => break, // every sender gone: drain complete
        };
        handle(&mut state, work);
        // Opportunistically drain without blocking; swap once dry.
        loop {
            match rx.try_recv() {
                Ok(w) => handle(&mut state, w),
                Err(TryRecvError::Empty) => {
                    state.flush();
                    break;
                }
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
    }
    state.flush();
    state
}

/// The accept loop. In oneshot mode, serves exactly one connection inline
/// and returns; otherwise spawns a capped connection thread per client
/// until shutdown is requested.
fn accept_loop(listener: TcpListener, ctx: ConnContext, oneshot: bool, max_connections: usize) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if oneshot {
            ctx.metrics.connections_accepted.inc();
            serve_connection(stream, &ctx);
            ctx.shutdown.store(true, Ordering::SeqCst);
            break;
        }
        if active.load(Ordering::SeqCst) >= max_connections {
            ctx.metrics.connections_rejected.inc();
            let mut s = stream;
            let _ = write_frame(
                &mut s,
                &Response::Error {
                    message: format!("busy: connection limit {max_connections} reached"),
                },
            );
            continue;
        }
        ctx.metrics.connections_accepted.inc();
        active.fetch_add(1, Ordering::SeqCst);
        let conn_ctx = ctx.clone();
        let conn_active = active.clone();
        conn_threads.retain(|h| !h.is_finished());
        let spawned = std::thread::Builder::new()
            .name("ricd-serve-conn".into())
            .spawn(move || {
                serve_connection(stream, &conn_ctx);
                conn_active.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(h) => conn_threads.push(h),
            Err(_) => {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    for h in conn_threads {
        let _ = h.join();
    }
}

/// Serves one client connection until it closes, errors fatally, stalls
/// past the frame deadline, or the server shuts down.
fn serve_connection(mut stream: TcpStream, ctx: &ConnContext) {
    // Bounded reads so this thread notices a shutdown requested elsewhere
    // even while its client is idle.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(ctx.io_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        // Wait for readability without consuming, so a poll timeout never
        // splits a frame.
        match stream.peek(&mut [0u8; 1]) {
            Ok(0) => return, // clean close
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // A frame has started: it must complete within the I/O budget.
        // Idling *between* frames is free; dribbling one byte at a time
        // *inside* a frame (slow-loris) is not — the deadline closes the
        // connection instead of pinning this thread.
        let mut reader = DeadlineReader {
            stream: &mut stream,
            deadline: Instant::now() + ctx.io_timeout,
        };
        let req: Request = match read_frame(&mut reader) {
            Ok(r) => r,
            Err(WireError::Closed) => return,
            Err(WireError::Malformed(m)) => {
                // Framing is intact (the payload was fully read), so reject
                // the frame and keep the connection.
                ctx.metrics.frames_malformed.inc();
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: format!("malformed frame: {m}"),
                    },
                );
                continue;
            }
            Err(WireError::TooLarge(n)) => {
                // Cannot resynchronize past an unread over-length payload.
                ctx.metrics.frames_malformed.inc();
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: WireError::TooLarge(n).to_string(),
                    },
                );
                return;
            }
            Err(WireError::Io(e)) if e.kind() == io::ErrorKind::TimedOut => {
                ctx.metrics.conn_timeouts.inc();
                return;
            }
            Err(WireError::Io(_)) => return,
        };
        let is_shutdown = matches!(req, Request::Shutdown);
        let resp = ctx.sink.handle(req);
        if let Err(e) = write_frame(&mut stream, &resp) {
            if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) {
                ctx.metrics.conn_timeouts.inc();
            }
            return;
        }
        if is_shutdown {
            ctx.request_shutdown();
            return;
        }
    }
}

impl RequestSink for Shared {
    /// Computes the response for one request against the monolith
    /// backend. `degraded` is always `false` here: a single-state daemon
    /// either answers in full or is down.
    fn handle(&self, req: Request) -> Response {
        match req {
            Request::Ingest { seq, records } => {
                let queued = records.len();
                match self.work_tx.try_send(Work::Batch { seq, records }) {
                    Ok(()) => {
                        self.metrics.ingest_queue_depth.add(1);
                        Response::Ingested {
                            seq,
                            records: queued,
                        }
                    }
                    Err(TrySendError::Full(_)) => {
                        self.metrics.backpressure_rejected.inc();
                        Response::Rejected {
                            seq,
                            queue_capacity: self.queue_capacity,
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => Response::Error {
                        message: "server is draining".into(),
                    },
                }
            }
            Request::IngestTimed { seq, records } => {
                let queued = records.len();
                match self.work_tx.try_send(Work::TimedBatch { seq, records }) {
                    Ok(()) => {
                        self.metrics.ingest_queue_depth.add(1);
                        Response::Ingested {
                            seq,
                            records: queued,
                        }
                    }
                    Err(TrySendError::Full(_)) => {
                        self.metrics.backpressure_rejected.inc();
                        Response::Rejected {
                            seq,
                            queue_capacity: self.queue_capacity,
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => Response::Error {
                        message: "server is draining".into(),
                    },
                }
            }
            Request::QueryRisk { users, items } => {
                self.metrics.queries_risk.inc();
                let snap = self.snapshot.load();
                Response::Risk {
                    epoch: snap.view.epoch(),
                    users: users.into_iter().map(|u| (u, snap.view.user(u))).collect(),
                    items: items.into_iter().map(|v| (v, snap.view.item(v))).collect(),
                    groups: snap.view.groups().len(),
                    degraded: false,
                    missing_shards: Vec::new(),
                }
            }
            Request::Recommend { user, n } => {
                self.metrics.queries_recommend.inc();
                let snap = self.snapshot.load();
                Response::Recommendation {
                    epoch: snap.view.epoch(),
                    items: snap.recommend(user, n),
                    degraded: false,
                }
            }
            Request::Metrics { count_only } => {
                let snap = self.registry.snapshot();
                Response::Metrics(if count_only { snap.count_only() } else { snap })
            }
            Request::Checkpoint => {
                let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
                // Blocking send: waits for queue room, so the marker lands
                // after every batch accepted before this request.
                if self
                    .work_tx
                    .send(Work::Checkpoint { reply: reply_tx })
                    .is_err()
                {
                    return Response::Error {
                        message: "server is draining".into(),
                    };
                }
                match reply_rx.recv() {
                    Ok(ckpt) => Response::CheckpointTaken(ckpt),
                    Err(_) => Response::Error {
                        message: "worker exited before the checkpoint completed".into(),
                    },
                }
            }
            Request::Status => {
                let snap = self.snapshot.load();
                Response::Status {
                    epoch: snap.view.epoch(),
                    quorum: 1,
                    degraded: false,
                    shards: vec![ShardStatus {
                        shard: 0,
                        state: "up".into(),
                        epoch: snap.view.epoch(),
                        backlog: self.metrics.ingest_queue_depth.get().max(0) as u64,
                        next_seq: 0,
                        restarts: 0,
                    }],
                }
            }
            // The connection layer flips the shutdown flag (and wakes the
            // accept loop) after this response is written.
            Request::Shutdown => Response::ShuttingDown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::state::ServeConfig;
    use ricd_core::{RicdParams, RicdPipeline};
    use ricd_engine::WorkerPool;

    fn start_server(cfg: ServeConfig) -> ServerHandle {
        let state = ServeState::new(
            cfg,
            RicdPipeline::new(RicdParams::default()).with_pool(WorkerPool::new(2)),
        );
        start(state, "127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn ingest_query_shutdown_round_trip() {
        let handle = start_server(ServeConfig {
            swap_every_batches: 1,
            ..ServeConfig::default()
        });
        let mut c = Client::connect(handle.addr()).unwrap();
        // A small planted attack: 10 workers ride item 0.
        let mut records = Vec::new();
        for u in 1000..1600u32 {
            records.push((UserId(u), ItemId(0), 1));
        }
        for u in 0..10u32 {
            records.push((UserId(u), ItemId(0), 1));
            for v in 1..10u32 {
                records.push((UserId(u), ItemId(v), 15));
            }
        }
        match c.request(&Request::Ingest { seq: 0, records }).unwrap() {
            Response::Ingested { seq: 0, .. } => {}
            other => panic!("expected Ingested, got {other:?}"),
        }
        // The swap is asynchronous; poll until the view flips.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let resp = c
                .request(&Request::QueryRisk {
                    users: vec![UserId(3), UserId(1200)],
                    items: vec![ItemId(5)],
                })
                .unwrap();
            match resp {
                Response::Risk {
                    epoch,
                    users,
                    items,
                    ..
                } if epoch > 0 => {
                    assert!(users[0].1.flagged, "worker flagged");
                    assert!(!users[1].1.flagged, "organic user clear");
                    assert!(items[0].1.flagged, "target flagged");
                    break;
                }
                Response::Risk { .. } => {
                    assert!(std::time::Instant::now() < deadline, "view never swapped");
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => panic!("expected Risk, got {other:?}"),
            }
        }
        assert!(matches!(
            c.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(c);
        let state = handle.join();
        assert_eq!(state.next_seq(), 1);
    }

    #[test]
    fn backpressure_rejects_when_queue_is_full_and_drops_nothing() {
        // Capacity-1 queue + slow worker (big batches) forces rejections.
        let handle = start_server(ServeConfig {
            queue_capacity: 1,
            swap_every_batches: 1,
            ..ServeConfig::default()
        });
        let mut c = Client::connect(handle.addr()).unwrap();
        let batch: Vec<_> = (0..3000u32)
            .map(|i| (UserId(i % 500), ItemId(i % 200), 1 + i % 5))
            .collect();
        let mut accepted = Vec::new();
        let mut rejected = 0u32;
        let mut seq = 0u64;
        while rejected == 0 || accepted.len() < 3 {
            match c
                .request(&Request::Ingest {
                    seq,
                    records: batch.clone(),
                })
                .unwrap()
            {
                Response::Ingested { .. } => {
                    accepted.push(seq);
                    seq += 1;
                }
                Response::Rejected { queue_capacity, .. } => {
                    assert_eq!(queue_capacity, 1);
                    rejected += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
            assert!(seq < 500, "backpressure never engaged");
        }
        let metrics = match c.request(&Request::Metrics { count_only: true }).unwrap() {
            Response::Metrics(m) => m,
            other => panic!("expected Metrics, got {other:?}"),
        };
        assert!(metrics.counter("serve.backpressure_rejected").unwrap() >= u64::from(rejected));
        c.shutdown().unwrap();
        drop(c);
        let state = handle.join();
        // Every accepted batch was processed: seq advanced exactly past them.
        assert_eq!(state.next_seq(), accepted.len() as u64);
    }

    #[test]
    fn checkpoint_over_the_wire_covers_accepted_batches() {
        let handle = start_server(ServeConfig::default());
        let mut c = Client::connect(handle.addr()).unwrap();
        for seq in 0..3u64 {
            let records = vec![(UserId(seq as u32), ItemId(0), 2)];
            assert!(matches!(
                c.request(&Request::Ingest { seq, records }).unwrap(),
                Response::Ingested { .. }
            ));
        }
        let ckpt = c.checkpoint().unwrap();
        assert_eq!(ckpt.next_seq, 3, "checkpoint serialized after batches");
        c.shutdown().unwrap();
        drop(c);
        handle.join();
    }

    #[test]
    fn malformed_frame_gets_an_error_and_the_connection_survives() {
        let handle = start_server(ServeConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let payload = b"{\"definitely\": \"not a request\"}";
        stream
            .write_all(&(payload.len() as u32).to_be_bytes())
            .unwrap();
        stream.write_all(payload).unwrap();
        let resp: Response = read_frame(&mut stream).unwrap();
        assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
        // Same connection still serves valid requests.
        write_frame(&mut stream, &Request::Metrics { count_only: true }).unwrap();
        let resp: Response = read_frame(&mut stream).unwrap();
        match resp {
            Response::Metrics(m) => {
                assert_eq!(m.counter("serve.frames_malformed"), Some(1));
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
        write_frame(&mut stream, &Request::Shutdown).unwrap();
        let _: Response = read_frame(&mut stream).unwrap();
        drop(stream);
        handle.join();
    }

    #[test]
    fn oversized_frame_closes_the_connection() {
        let handle = start_server(ServeConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(&(crate::wire::MAX_FRAME_LEN + 1).to_be_bytes())
            .unwrap();
        let resp: Response = read_frame(&mut stream).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
        // Server closed its side; the next read sees EOF.
        assert!(matches!(
            read_frame::<Response>(&mut stream),
            Err(WireError::Closed) | Err(WireError::Io(_))
        ));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn slow_loris_partial_frame_times_out_and_closes_the_connection() {
        let handle = start_server(ServeConfig {
            io_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        });
        let mut loris = TcpStream::connect(handle.addr()).unwrap();
        // Start a frame but never finish it: promise 64 bytes, send 3.
        loris.write_all(&64u32.to_be_bytes()).unwrap();
        loris.write_all(b"{\"I").unwrap();
        // The frame deadline closes the connection server-side; the
        // dribbling client sees EOF, never a reply.
        loris
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut buf = [0u8; 1];
        match loris.read(&mut buf) {
            Ok(0) => {}
            other => panic!("expected server-side close, got {other:?}"),
        }
        drop(loris);
        // The guard is observable: a healthy client sees the counter.
        let mut c = Client::connect(handle.addr()).unwrap();
        match c.request(&Request::Metrics { count_only: true }).unwrap() {
            Response::Metrics(m) => {
                assert_eq!(m.counter("serve.conn_timeouts"), Some(1));
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
        c.shutdown().unwrap();
        drop(c);
        handle.join();
    }

    #[test]
    fn connection_cap_rejects_excess_clients_with_busy() {
        let handle = start_server(ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        });
        let mut first = Client::connect(handle.addr()).unwrap();
        // Prove the first connection is established server-side.
        first.metrics(true).unwrap();
        let mut second = TcpStream::connect(handle.addr()).unwrap();
        let resp: Response = read_frame(&mut second).unwrap();
        match resp {
            Response::Error { message } => assert!(message.contains("busy"), "{message}"),
            other => panic!("expected busy Error, got {other:?}"),
        }
        first.shutdown().unwrap();
        drop(first);
        handle.join();
    }

    use std::io::Write;
}
