//! The epoch-snapshot cell queries read from.
//!
//! An `ArcSwap`-style primitive on std only: the detection thread builds a
//! complete new snapshot off to the side and [`store`](SnapshotCell::store)s
//! it as one pointer replacement; readers [`load`](SnapshotCell::load) an
//! `Arc` and keep using *their* snapshot for as long as they like. A reader
//! therefore never observes a half-swapped state — it either has the old
//! generation or the new one, never a mixture — and the writer never waits
//! for readers to finish (the old `Arc` is freed when its last reader
//! drops it).
//!
//! The lock is held only for the pointer clone/replace, never across a
//! query or a rebuild, so contention is bounded by pointer-copy time.

use std::sync::{Arc, RwLock};

/// A shared slot holding the current immutable snapshot.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    slot: RwLock<Arc<T>>,
}

impl<T> SnapshotCell<T> {
    /// A cell holding `initial`.
    pub fn new(initial: T) -> Self {
        Self {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. The returned `Arc` stays valid (and
    /// internally consistent) however many swaps happen after this call.
    pub fn load(&self) -> Arc<T> {
        self.slot.read().expect("snapshot cell poisoned").clone()
    }

    /// Publishes `next` as the current snapshot.
    pub fn store(&self, next: T) {
        *self.slot.write().expect("snapshot cell poisoned") = Arc::new(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_returns_latest_store() {
        let cell = SnapshotCell::new(1);
        assert_eq!(*cell.load(), 1);
        cell.store(2);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn old_readers_keep_their_snapshot() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.store(vec![9]);
        assert_eq!(*old, vec![1, 2, 3], "pre-swap reader unaffected");
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_snapshot() {
        // Snapshots are (n, n) pairs; a torn read would show a != b.
        let cell = Arc::new(SnapshotCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        assert_eq!(snap.0, snap.1, "torn snapshot observed");
                    }
                });
            }
            for n in 1..2000u64 {
                cell.store((n, n));
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
