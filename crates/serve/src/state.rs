//! The server's detection-side state: a [`StreamingDetector`] plus the
//! machinery that turns its running result into query-servable snapshots.
//!
//! [`ServeState`] is deliberately synchronous and single-owner — the
//! daemon's background detection thread owns one and drives it; everything
//! concurrent (the ingest queue, the connection pool) lives in
//! [`server`](crate::server). That split keeps the state deterministic
//! under test: the golden-metrics suite drives a `ServeState` directly,
//! batch by batch, on a manual clock and pins the exact `serve.*` counter
//! set the daemon would produce.

use crate::shared::SnapshotCell;
use ricd_core::incremental::{BatchStats, Checkpoint, StreamingDetector};
use ricd_core::riskview::RiskView;
use ricd_core::{BudgetClock, RicdPipeline, RunBudget};
use ricd_engine::WorkerPool;
use ricd_graph::{BipartiteGraph, GraphBuilder, ItemId, UserId};
use ricd_obs::{Counter, Gauge, Histogram, MetricsRegistry, DURATION_BUCKETS_NANOS};
use ricd_recommender::I2iIndex;
use std::sync::Arc;
use std::time::Duration;

/// Serving configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Ingest queue capacity (batches). A full queue **rejects** further
    /// batches — explicit backpressure, never unbounded buffering.
    pub queue_capacity: usize,
    /// Maximum concurrent client connections; excess connections get an
    /// error frame and are closed.
    pub max_connections: usize,
    /// Rebuild + swap the risk view after this many ingested batches (the
    /// queue draining empty also triggers a swap, so a quiet stream still
    /// converges).
    pub swap_every_batches: usize,
    /// Also swap once this much wall-clock time has passed since the last
    /// swap, even mid-cadence (measured with a [`BudgetClock`]).
    pub swap_interval: Option<Duration>,
    /// Width of the cleaned I2I index's per-anchor lists.
    pub recommend_per_anchor: usize,
    /// Serve exactly one client connection, then drain and exit.
    pub oneshot: bool,
    /// Name prefix for this state's metric family. The monolith daemon and
    /// the router's aggregate set use the default `"serve"`; the router's
    /// shard workers register as `"serve.shard.<i>"` so one registry holds
    /// every shard's counters side by side.
    pub metrics_prefix: String,
    /// Per-connection frame I/O deadline (the slow-loris guard): once a
    /// frame's first byte is visible, the whole frame must arrive — and
    /// responses must flush — within this budget or the connection is
    /// closed and `<prefix>.conn_timeouts` incremented.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_connections: 32,
            swap_every_batches: 8,
            swap_interval: None,
            recommend_per_anchor: 50,
            oneshot: false,
            metrics_prefix: "serve".into(),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// One immutable, internally consistent serving snapshot: the risk view,
/// the cumulative graph it was computed on, and the cleaned I2I index with
/// that view's fake co-clicks subtracted. Queries resolve entirely inside
/// one snapshot, so a mid-query swap can never mix generations.
#[derive(Clone, Debug)]
pub struct ServeSnapshot {
    /// Risk verdicts.
    pub view: RiskView,
    /// The cumulative click graph behind `view`.
    pub graph: BipartiteGraph,
    /// The cleaned I2I index (flagged users' wedges removed).
    pub clean_index: I2iIndex,
}

impl ServeSnapshot {
    /// The pre-ingestion snapshot: empty view over an empty graph.
    pub fn empty() -> Self {
        let graph = GraphBuilder::new().build();
        let clean_index = I2iIndex::build(&graph, 1, &WorkerPool::new(1));
        Self {
            view: RiskView::empty(),
            graph,
            clean_index,
        }
    }

    /// Cleaned top-`n` recommendations for `user` within this snapshot.
    pub fn recommend(&self, user: UserId, n: usize) -> Vec<(ItemId, f32)> {
        if (user.0 as usize) >= self.graph.num_users() {
            return Vec::new();
        }
        ricd_recommender::recommend_with(&self.graph, &self.clean_index, user, n)
    }
}

/// Handles to every `serve.*` metric, registered eagerly so the metric set
/// is identical whether or not a code path fired (golden-snapshot
/// stability), and so hot paths never take the registry lock.
#[derive(Clone)]
pub(crate) struct ServeMetrics {
    pub batches: Counter,
    pub records: Counter,
    pub timed_batches: Counter,
    pub timed_records: Counter,
    pub event_ts: Gauge,
    pub backpressure_rejected: Counter,
    pub queries_risk: Counter,
    pub queries_recommend: Counter,
    pub frames_malformed: Counter,
    pub connections_accepted: Counter,
    pub connections_rejected: Counter,
    pub conn_timeouts: Counter,
    pub view_swaps: Counter,
    pub ingest_queue_depth: Gauge,
    pub epoch: Gauge,
    pub view_groups: Gauge,
    pub view_flagged_users: Gauge,
    pub view_flagged_items: Gauge,
    pub batch_nanos: Histogram,
    pub swap_nanos: Histogram,
}

impl ServeMetrics {
    pub(crate) fn register(registry: &MetricsRegistry, prefix: &str) -> Self {
        let name = |suffix: &str| format!("{prefix}.{suffix}");
        Self {
            batches: registry.counter(&name("batches")),
            records: registry.counter(&name("records")),
            timed_batches: registry.counter(&name("timed_batches")),
            timed_records: registry.counter(&name("timed_records")),
            event_ts: registry.gauge(&name("event_ts")),
            backpressure_rejected: registry.counter(&name("backpressure_rejected")),
            queries_risk: registry.counter(&name("queries_risk")),
            queries_recommend: registry.counter(&name("queries_recommend")),
            frames_malformed: registry.counter(&name("frames_malformed")),
            connections_accepted: registry.counter(&name("connections_accepted")),
            connections_rejected: registry.counter(&name("connections_rejected")),
            conn_timeouts: registry.counter(&name("conn_timeouts")),
            view_swaps: registry.counter(&name("swaps")),
            ingest_queue_depth: registry.gauge(&name("ingest_queue_depth")),
            epoch: registry.gauge(&name("epoch")),
            view_groups: registry.gauge(&name("view_groups")),
            view_flagged_users: registry.gauge(&name("view_flagged_users")),
            view_flagged_items: registry.gauge(&name("view_flagged_items")),
            batch_nanos: registry.histogram(&name("batch_nanos"), &DURATION_BUCKETS_NANOS),
            swap_nanos: registry.histogram(&name("swap_nanos"), &DURATION_BUCKETS_NANOS),
        }
    }
}

/// The single-owner detection state behind a server.
pub struct ServeState {
    cfg: ServeConfig,
    detector: StreamingDetector,
    pool: WorkerPool,
    registry: MetricsRegistry,
    metrics: ServeMetrics,
    shared: Arc<SnapshotCell<ServeSnapshot>>,
    epoch: u64,
    batches_since_swap: usize,
    swap_clock: Option<BudgetClock>,
}

impl ServeState {
    /// Fresh state with an empty stream. The pipeline supplies detection
    /// parameters, the worker pool, and the metrics registry the `serve.*`
    /// family registers into.
    pub fn new(cfg: ServeConfig, pipeline: RicdPipeline) -> Self {
        let cell = Arc::new(SnapshotCell::new(ServeSnapshot::empty()));
        Self::new_in_cell(cfg, pipeline, cell)
    }

    /// Like [`new`](Self::new) but publishing into an existing snapshot
    /// cell — the sharded runtime's restart path: a replacement shard
    /// worker republishes into the *same* cell its predecessor's queries
    /// read from, so query routing never has to re-wire.
    pub fn new_in_cell(
        cfg: ServeConfig,
        pipeline: RicdPipeline,
        cell: Arc<SnapshotCell<ServeSnapshot>>,
    ) -> Self {
        let registry = pipeline.metrics.clone();
        let pool = pipeline.pool.clone();
        let metrics = ServeMetrics::register(&registry, &cfg.metrics_prefix);
        let swap_clock = cfg
            .swap_interval
            .map(|d| BudgetClock::start(RunBudget::none().with_deadline(d)));
        Self {
            cfg,
            detector: StreamingDetector::new(pipeline),
            pool,
            registry,
            metrics,
            shared: cell,
            epoch: 0,
            batches_since_swap: 0,
            swap_clock,
        }
    }

    /// State resumed from a [`Checkpoint`] (PR 1's crash-recovery format).
    /// The restored view is rebuilt and published immediately, so a
    /// restarted server serves the pre-crash verdicts before any new batch
    /// arrives.
    pub fn restore(cfg: ServeConfig, pipeline: RicdPipeline, ckpt: Checkpoint) -> Self {
        let cell = Arc::new(SnapshotCell::new(ServeSnapshot::empty()));
        Self::restore_in_cell(cfg, pipeline, ckpt, cell)
    }

    /// [`restore`](Self::restore) into an existing snapshot cell (see
    /// [`new_in_cell`](Self::new_in_cell)).
    pub fn restore_in_cell(
        cfg: ServeConfig,
        pipeline: RicdPipeline,
        ckpt: Checkpoint,
        cell: Arc<SnapshotCell<ServeSnapshot>>,
    ) -> Self {
        let registry = pipeline.metrics.clone();
        let pool = pipeline.pool.clone();
        let metrics = ServeMetrics::register(&registry, &cfg.metrics_prefix);
        let swap_clock = cfg
            .swap_interval
            .map(|d| BudgetClock::start(RunBudget::none().with_deadline(d)));
        let mut state = Self {
            cfg,
            detector: StreamingDetector::restore(pipeline, ckpt),
            pool,
            registry,
            metrics,
            shared: cell,
            epoch: 0,
            batches_since_swap: 0,
            swap_clock,
        };
        state.rebuild_view();
        state
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The snapshot cell queries read from.
    pub fn shared(&self) -> Arc<SnapshotCell<ServeSnapshot>> {
        self.shared.clone()
    }

    /// The metrics registry (shared with the pipeline and detector).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub(crate) fn serve_metrics(&self) -> ServeMetrics {
        self.metrics.clone()
    }

    /// The next batch sequence number the detector expects.
    pub fn next_seq(&self) -> u64 {
        self.detector.next_seq()
    }

    /// Ingests one batch through the streaming detector, recording batch
    /// latency, then swaps in a fresh view if the cadence (batch count or
    /// interval deadline) says so. Returns the detector's batch counters.
    pub fn ingest(&mut self, seq: u64, records: &[(UserId, ItemId, u32)]) -> BatchStats {
        let t0 = self.registry.clock().now();
        let stats = self.detector.ingest_batch(seq, records);
        let elapsed = self.registry.clock().now().saturating_sub(t0);
        self.metrics.batch_nanos.observe_duration(elapsed);
        self.metrics.batches.inc();
        self.metrics.records.add(stats.records as u64);
        self.batches_since_swap += 1;
        let interval_due = self
            .swap_clock
            .as_ref()
            .is_some_and(BudgetClock::deadline_exceeded);
        if self.batches_since_swap >= self.cfg.swap_every_batches || interval_due {
            self.rebuild_view();
        }
        stats
    }

    /// Ingests one **timestamped** batch: records the batch's event-time
    /// high-water mark (`<prefix>.event_ts` gauge) and the timed-ingest
    /// counters, then feeds the stripped `(user, item, clicks)` triples
    /// through the same path as [`ingest`](Self::ingest). Event time is
    /// observability-only here — windowed eviction lives in
    /// [`WindowedDetector`](ricd_core::temporal::WindowedDetector), which
    /// the replay harness drives directly; the serve tier keeps the
    /// cumulative-stream semantics its checkpoint format promises.
    pub fn ingest_timed(&mut self, seq: u64, records: &[(UserId, ItemId, u32, u64)]) -> BatchStats {
        self.metrics.timed_batches.inc();
        self.metrics.timed_records.add(records.len() as u64);
        if let Some(max_ts) = records.iter().map(|&(_, _, _, ts)| ts).max() {
            let ts = i64::try_from(max_ts).unwrap_or(i64::MAX);
            if ts > self.metrics.event_ts.get() {
                self.metrics.event_ts.set(ts);
            }
        }
        let stripped: Vec<(UserId, ItemId, u32)> =
            records.iter().map(|&(u, v, c, _)| (u, v, c)).collect();
        self.ingest(seq, &stripped)
    }

    /// Rebuilds the serving snapshot from the detector's current result and
    /// publishes it: a new epoch-stamped [`RiskView`], a clone of the
    /// cumulative graph, and the cleaned I2I index with the view's flagged
    /// users subtracted. Queries switch to the new generation atomically.
    pub fn rebuild_view(&mut self) {
        let t0 = self.registry.clock().now();
        self.epoch += 1;
        let result = self.detector.result();
        let view = RiskView::from_result(self.epoch, &result);
        let graph = self.detector.graph().clone();
        let flagged = view.flagged_users();
        let clean_index =
            I2iIndex::build_cleaned(&graph, self.cfg.recommend_per_anchor, &self.pool, &flagged);
        self.metrics.epoch.set(self.epoch as i64);
        self.metrics.view_groups.set(view.groups().len() as i64);
        self.metrics
            .view_flagged_users
            .set(view.num_flagged_users() as i64);
        self.metrics
            .view_flagged_items
            .set(view.num_flagged_items() as i64);
        self.metrics.view_swaps.inc();
        self.shared.store(ServeSnapshot {
            view,
            graph,
            clean_index,
        });
        self.batches_since_swap = 0;
        if let Some(interval) = self.cfg.swap_interval {
            self.swap_clock = Some(BudgetClock::start(
                RunBudget::none().with_deadline(interval),
            ));
        }
        let elapsed = self.registry.clock().now().saturating_sub(t0);
        self.metrics.swap_nanos.observe_duration(elapsed);
    }

    /// Rebuilds the view only if batches arrived since the last swap. The
    /// worker calls this whenever the ingest queue drains, so a quiet
    /// stream converges to a view covering every accepted batch without
    /// waiting out the cadence.
    pub fn flush(&mut self) {
        if self.batches_since_swap > 0 {
            self.rebuild_view();
        }
    }

    /// A consistent checkpoint of the detector (covers every batch ingested
    /// so far).
    pub fn checkpoint(&self) -> Checkpoint {
        self.detector.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricd_core::RicdParams;

    fn attack_world() -> Vec<Vec<(UserId, ItemId, u32)>> {
        // Hot item + a 12x11 attack arriving over two batches.
        let mut background = Vec::new();
        for u in 1000..2200u32 {
            background.push((UserId(u), ItemId(0), 1));
        }
        let mut attack = Vec::new();
        for u in 0..12u32 {
            attack.push((UserId(u), ItemId(0), 1));
            for v in 1..12u32 {
                attack.push((UserId(u), ItemId(v), 15));
            }
        }
        vec![background, attack]
    }

    fn state(swap_every: usize) -> ServeState {
        let cfg = ServeConfig {
            swap_every_batches: swap_every,
            ..ServeConfig::default()
        };
        ServeState::new(
            cfg,
            RicdPipeline::new(RicdParams::default()).with_pool(WorkerPool::new(2)),
        )
    }

    #[test]
    fn empty_state_serves_epoch_zero() {
        let s = state(4);
        let snap = s.shared().load();
        assert_eq!(snap.view.epoch(), 0);
        assert!(!snap.view.user(UserId(0)).flagged);
        assert!(snap.recommend(UserId(0), 5).is_empty());
    }

    #[test]
    fn cadence_swaps_after_configured_batches() {
        let mut s = state(2);
        let shared = s.shared();
        let batches = attack_world();
        s.ingest(0, &batches[0]);
        assert_eq!(shared.load().view.epoch(), 0, "one batch: no swap yet");
        s.ingest(1, &batches[1]);
        let snap = shared.load();
        assert_eq!(snap.view.epoch(), 1, "second batch hits the cadence");
        assert_eq!(snap.view.groups().len(), 1);
        assert!(snap.view.user(UserId(3)).flagged);
        assert!(snap.view.item(ItemId(5)).flagged);
        assert!(!snap.view.item(ItemId(0)).flagged, "hot item is a victim");
    }

    #[test]
    fn explicit_rebuild_publishes_without_cadence() {
        let mut s = state(100);
        let shared = s.shared();
        for (i, b) in attack_world().iter().enumerate() {
            s.ingest(i as u64, b);
        }
        assert_eq!(shared.load().view.epoch(), 0);
        s.rebuild_view();
        assert_eq!(shared.load().view.epoch(), 1);
        assert_eq!(shared.load().view.groups().len(), 1);
    }

    #[test]
    fn recommendations_are_cleaned() {
        let mut s = state(1);
        for (i, b) in attack_world().iter().enumerate() {
            s.ingest(i as u64, b);
        }
        let snap = s.shared().load();
        // A victim who clicked only the ridden hot item: cleaned lists must
        // not surface the attack's targets.
        let recs = snap.recommend(UserId(1500), 10);
        assert!(
            recs.iter().all(|&(v, _)| !snap.view.item(v).flagged),
            "flagged targets leaked into a victim's list: {recs:?}"
        );
    }

    #[test]
    fn checkpoint_restore_republishes_the_same_view() {
        let mut s = state(1);
        for (i, b) in attack_world().iter().enumerate() {
            s.ingest(i as u64, b);
        }
        let before = s.shared().load();
        let ckpt = s.checkpoint();
        let restored = ServeState::restore(
            ServeConfig::default(),
            RicdPipeline::new(RicdParams::default()).with_pool(WorkerPool::new(2)),
            ckpt,
        );
        let after = restored.shared().load();
        assert_eq!(after.view.groups(), before.view.groups());
        assert_eq!(
            after.view.num_flagged_users(),
            before.view.num_flagged_users()
        );
        assert_eq!(restored.next_seq(), 2);
    }

    #[test]
    fn serve_metrics_are_registered_eagerly_and_track_ingest() {
        let registry = MetricsRegistry::new();
        let mut s = ServeState::new(
            ServeConfig {
                swap_every_batches: 2,
                ..ServeConfig::default()
            },
            RicdPipeline::new(RicdParams::default())
                .with_pool(WorkerPool::new(2))
                .with_metrics(registry.clone()),
        );
        let snap = registry.snapshot();
        for name in [
            "serve.batches",
            "serve.backpressure_rejected",
            "serve.queries_risk",
            "serve.frames_malformed",
            "serve.swaps",
        ] {
            assert_eq!(snap.counter(name), Some(0), "{name} registered at 0");
        }
        assert_eq!(snap.gauge("serve.ingest_queue_depth"), Some(0));
        for (i, b) in attack_world().iter().enumerate() {
            s.ingest(i as u64, b);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.batches"), Some(2));
        assert!(snap.counter("serve.records").unwrap() > 0);
        assert_eq!(snap.counter("serve.swaps"), Some(1));
        assert_eq!(snap.gauge("serve.epoch"), Some(1));
        assert_eq!(snap.gauge("serve.view_groups"), Some(1));
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "serve.batch_nanos")
            .expect("batch latency histogram");
        assert_eq!(h.count, 2);
    }

    #[test]
    fn timed_ingest_strips_timestamps_and_tracks_event_time() {
        let registry = MetricsRegistry::new();
        let mut s = ServeState::new(
            ServeConfig {
                swap_every_batches: 1,
                ..ServeConfig::default()
            },
            RicdPipeline::new(RicdParams::default())
                .with_pool(WorkerPool::new(2))
                .with_metrics(registry.clone()),
        );
        for (i, b) in attack_world().iter().enumerate() {
            let timed: Vec<_> = b
                .iter()
                .map(|&(u, v, c)| (u, v, c, 100 * (i as u64 + 1)))
                .collect();
            s.ingest_timed(i as u64, &timed);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.timed_batches"), Some(2));
        assert_eq!(snap.counter("serve.batches"), Some(2));
        assert_eq!(snap.gauge("serve.event_ts"), Some(200));
        // Detection over the stripped stream matches the untimed path.
        let view = s.shared().load();
        assert_eq!(view.view.groups().len(), 1);
        assert!(view.view.user(UserId(3)).flagged);
    }

    #[test]
    fn interval_deadline_forces_a_swap_mid_cadence() {
        let cfg = ServeConfig {
            swap_every_batches: 1000,
            swap_interval: Some(Duration::ZERO),
            ..ServeConfig::default()
        };
        let mut s = ServeState::new(
            cfg,
            RicdPipeline::new(RicdParams::default()).with_pool(WorkerPool::new(2)),
        );
        s.ingest(0, &[(UserId(1), ItemId(1), 1)]);
        assert_eq!(s.shared().load().view.epoch(), 1, "zero interval swaps");
    }
}
