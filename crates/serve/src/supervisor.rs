//! Shard workers and the supervision tree that keeps them alive.
//!
//! Each shard of the routed runtime is one [`ShardSlot`]: a replay-log
//! channel the router appends routed sub-batches to, a snapshot cell
//! queries read from, and health/heartbeat state the supervisor probes.
//! The worker thread owning the shard's [`ServeState`] is **expendable** —
//! it processes batches by *reading* the log (entries are only dropped
//! when a checkpoint durably covers them), so a panic loses nothing: the
//! supervisor joins the dead thread, rebuilds a `ServeState` from the
//! shard's last checkpoint into the *same* snapshot cell, and the new
//! worker replays the retained log. Replay is exactly-once end to end
//! because local sequence numbers ride with the log and the
//! `StreamingDetector` deduplicates by sequence (PR 1's contract).
//!
//! Health is three-valued, probed rather than self-reported where it
//! matters:
//!
//! * `Up` — thread alive, caught up past its recovery target;
//! * `Recovering` — a restarted worker replaying toward the log tail it
//!   was restarted at;
//! * `Down` — the thread is dead (join returned a panic) or stalled (work
//!   pending but no heartbeat within the stall budget). A stalled thread
//!   cannot be killed from outside; marking it `Down` is what degrades
//!   queries honestly until it resumes and re-beats.

use crate::retry::RetryPolicy;
use crate::shared::SnapshotCell;
use crate::state::{ServeConfig, ServeSnapshot, ServeState};
use ricd_core::incremental::Checkpoint;
use ricd_core::{RicdParams, RicdPipeline};
use ricd_engine::{ServeFault, ServeFaultInjector, WorkerPool};
use ricd_graph::{ItemId, UserId};
use ricd_obs::{Counter, Gauge, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A shard's probed health.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Dead or stalled; its view is excluded from queries.
    Down,
    /// Restarted and replaying its log toward the restart-time tail.
    Recovering,
    /// Alive and caught up.
    Up,
}

impl ShardHealth {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => ShardHealth::Down,
            1 => ShardHealth::Recovering,
            _ => ShardHealth::Up,
        }
    }

    /// The wire-protocol spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Down => "down",
            ShardHealth::Recovering => "recovering",
            ShardHealth::Up => "up",
        }
    }
}

/// A checkpoint barrier riding the shard's log: executed only once the
/// worker's `next` passes `upto`, i.e. after every batch appended before
/// the barrier was requested. Barriers live in the channel, not the
/// worker, so they survive a worker crash and are satisfied by the
/// replacement after replay.
struct CheckpointBarrier {
    upto: u64,
    reply: SyncSender<Checkpoint>,
}

/// The replay-log channel between router and one shard worker.
struct ChannelInner {
    /// Local sequence of `log[0]`.
    base: u64,
    /// Routed sub-batches retained for crash replay; truncated only when
    /// a checkpoint covers them.
    log: VecDeque<Arc<Vec<(UserId, ItemId, u32)>>>,
    /// Local sequence of the next batch the worker will process.
    next: u64,
    /// Pending checkpoint barriers.
    barriers: Vec<CheckpointBarrier>,
    /// Graceful drain requested: finish the log, flush, exit.
    shutdown: bool,
}

impl ChannelInner {
    fn tail(&self) -> u64 {
        self.base + self.log.len() as u64
    }
}

/// What a worker found on its channel.
enum Task {
    Batch(u64, Arc<Vec<(UserId, ItemId, u32)>>),
    Checkpoint(SyncSender<Checkpoint>),
    /// Log dry; `true` = drain-and-exit was requested.
    Idle(bool),
}

/// The shard channel: a mutex-guarded replay log plus a condvar workers
/// park on.
pub(crate) struct ShardChannel {
    inner: Mutex<ChannelInner>,
    work: Condvar,
}

impl ShardChannel {
    fn new() -> Self {
        Self {
            inner: Mutex::new(ChannelInner {
                base: 0,
                log: VecDeque::new(),
                next: 0,
                barriers: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChannelInner> {
        self.inner.lock().expect("shard channel poisoned")
    }

    /// Appends a routed sub-batch, returning its local sequence.
    pub(crate) fn push(&self, records: Arc<Vec<(UserId, ItemId, u32)>>) -> u64 {
        let seq = {
            let mut inner = self.lock();
            let seq = inner.tail();
            inner.log.push_back(records);
            seq
        };
        self.work.notify_all();
        seq
    }

    /// Unprocessed batches (`tail - next`): the admission-control bound.
    pub(crate) fn backlog(&self) -> u64 {
        let inner = self.lock();
        inner.tail().saturating_sub(inner.next)
    }

    /// The worker's next local sequence.
    pub(crate) fn next_seq(&self) -> u64 {
        self.lock().next
    }

    /// Enqueues a checkpoint barrier at the current tail; the reply fires
    /// once the worker has processed everything appended before this call.
    ///
    /// Refused once the channel is draining: the worker may already have
    /// exited (it answers every barrier it can see before doing so), and a
    /// barrier enqueued past that point would never fire — the requester
    /// would block out its whole deadline. Dropping the reply here makes
    /// the requester's `recv` fail immediately instead.
    pub(crate) fn request_checkpoint(&self, reply: SyncSender<Checkpoint>) {
        {
            let mut inner = self.lock();
            if inner.shutdown {
                return;
            }
            let upto = inner.tail();
            inner.barriers.push(CheckpointBarrier { upto, reply });
        }
        self.work.notify_all();
    }

    /// Drops log entries durably covered by a checkpoint (`< seq`).
    pub(crate) fn truncate_to(&self, seq: u64) {
        let mut inner = self.lock();
        while inner.base < seq && !inner.log.is_empty() {
            inner.log.pop_front();
            inner.base += 1;
        }
    }

    /// Rewinds the worker cursor to `seq` (a restart replaying from its
    /// checkpoint). Clamped to the retained range.
    fn rewind_to(&self, seq: u64) {
        let mut inner = self.lock();
        inner.next = seq.max(inner.base).min(inner.tail());
    }

    /// Fast-forwards a fresh (empty) channel so local sequences continue
    /// from a restored checkpoint: a resumed process starts with an empty
    /// log, but the restored detector's cursor is already at
    /// `ckpt.next_seq` — without this, new pushes would number from 0 and
    /// be discarded as replays. No-op once the log holds entries.
    pub(crate) fn resume_at(&self, seq: u64) {
        let mut inner = self.lock();
        if inner.log.is_empty() && inner.base < seq {
            inner.base = seq;
            inner.next = seq;
        }
    }

    /// Requests a graceful drain: the worker finishes the log and exits.
    pub(crate) fn begin_drain(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }

    /// Non-blocking scan for the worker's next task.
    fn next_task(&self) -> Task {
        let mut inner = self.lock();
        let next = inner.next;
        if let Some(pos) = inner.barriers.iter().position(|b| b.upto <= next) {
            return Task::Checkpoint(inner.barriers.remove(pos).reply);
        }
        if inner.next < inner.tail() {
            let idx = (inner.next - inner.base) as usize;
            return Task::Batch(inner.next, inner.log[idx].clone());
        }
        Task::Idle(inner.shutdown)
    }

    /// Parks until work might be available (bounded, so heartbeats and
    /// shutdown checks still happen on an idle shard).
    fn wait_for_work(&self, timeout: Duration) {
        let inner = self.lock();
        let _ = self
            .work
            .wait_timeout(inner, timeout)
            .expect("shard channel poisoned");
    }
}

/// Everything shared about one shard between router, supervisor, and the
/// (current) worker thread.
pub(crate) struct ShardSlot {
    /// Shard index.
    pub(crate) shard: usize,
    /// The snapshot cell this shard's queries read from — stable across
    /// worker restarts.
    pub(crate) cell: Arc<SnapshotCell<ServeSnapshot>>,
    /// The replay-log channel.
    pub(crate) channel: ShardChannel,
    /// Probed health (`ShardHealth` as u8).
    health: AtomicU8,
    /// Last sign of life, as nanos since the supervisor's start instant.
    heartbeat: AtomicU64,
    /// Supervisor restarts of this shard.
    pub(crate) restarts: AtomicU64,
    /// Local sequence a recovering worker must reach before going `Up`.
    recovery_target: AtomicU64,
    /// In-memory mirror of the shard's last coordinated checkpoint — what
    /// a restart rebuilds from (identical to the on-disk file when a
    /// checkpoint directory is configured).
    pub(crate) last_checkpoint: Mutex<Option<Checkpoint>>,
}

impl ShardSlot {
    fn new(shard: usize) -> Self {
        Self {
            shard,
            cell: Arc::new(SnapshotCell::new(ServeSnapshot::empty())),
            channel: ShardChannel::new(),
            health: AtomicU8::new(2),
            heartbeat: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            recovery_target: AtomicU64::new(0),
            last_checkpoint: Mutex::new(None),
        }
    }

    pub(crate) fn health(&self) -> ShardHealth {
        ShardHealth::from_u8(self.health.load(Ordering::SeqCst))
    }

    pub(crate) fn set_health(&self, h: ShardHealth) {
        self.health.store(h as u8, Ordering::SeqCst);
    }

    /// The shard's latest published view epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.cell.load().view.epoch()
    }

    fn beat(&self, origin: Instant) {
        self.heartbeat
            .store(origin.elapsed().as_nanos() as u64, Ordering::SeqCst);
    }
}

/// Builds fresh or restored per-shard [`ServeState`]s — kept by the
/// supervisor because a restart must construct a brand-new state (the old
/// one died with its thread).
pub(crate) struct ShardStateFactory {
    pub(crate) params: RicdParams,
    pub(crate) registry: MetricsRegistry,
    pub(crate) template: ServeConfig,
    pub(crate) workers_per_shard: usize,
}

impl ShardStateFactory {
    fn config_for(&self, shard: usize) -> ServeConfig {
        ServeConfig {
            metrics_prefix: format!("serve.shard.{shard}"),
            ..self.template.clone()
        }
    }

    fn pipeline(&self) -> RicdPipeline {
        RicdPipeline::new(self.params)
            .with_pool(WorkerPool::new(self.workers_per_shard.max(1)))
            .with_metrics(self.registry.clone())
    }

    pub(crate) fn build(&self, slot: &ShardSlot, ckpt: Option<Checkpoint>) -> ServeState {
        let cfg = self.config_for(slot.shard);
        match ckpt {
            Some(c) => ServeState::restore_in_cell(cfg, self.pipeline(), c, slot.cell.clone()),
            None => ServeState::new_in_cell(cfg, self.pipeline(), slot.cell.clone()),
        }
    }
}

/// How often an idle worker wakes to re-check shutdown and heartbeat.
const WORKER_IDLE_WAIT: Duration = Duration::from_millis(20);

/// The shard worker loop: drain the replay log, honor checkpoint
/// barriers, flush the view when dry, heartbeat throughout. Returns the
/// final state on graceful drain. Panics (deliberately un-caught) when a
/// kill fault fires — crash recovery is the supervisor's job, and the
/// panic site is chosen so no lock is poisoned: faults fire after the
/// batch is cloned out of the channel and before any state mutation.
fn shard_worker(
    slot: Arc<ShardSlot>,
    mut state: ServeState,
    injector: Arc<ServeFaultInjector>,
    origin: Instant,
) -> ServeState {
    loop {
        slot.beat(origin);
        match slot.channel.next_task() {
            Task::Batch(seq, records) => {
                match injector.take(slot.shard, seq) {
                    Some(ServeFault::Kill) => {
                        panic!("serve chaos: kill shard {} at seq {seq}", slot.shard)
                    }
                    Some(ServeFault::Stall { millis }) => {
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    // Wire-level fault; the chaos harness drives it from
                    // the client side. A no-op at the worker.
                    Some(ServeFault::SlowFrame { .. }) | None => {}
                }
                state.ingest(seq, &records);
                slot.beat(origin);
                let next = {
                    let mut inner = slot.channel.lock();
                    // A replayed prefix keeps `next` monotone even if the
                    // router appended while we processed.
                    inner.next = inner.next.max(seq + 1);
                    inner.next
                };
                if next >= slot.recovery_target.load(Ordering::SeqCst) {
                    slot.set_health(ShardHealth::Up);
                } else {
                    slot.set_health(ShardHealth::Recovering);
                }
                slot.channel.work.notify_all();
            }
            Task::Checkpoint(reply) => {
                // A barrier is also a *view* barrier: flush first, so the
                // published snapshot covers everything the checkpoint
                // covers. The receiver may have timed out and gone; that
                // aborts the coordinated checkpoint, not this worker.
                state.flush();
                let _ = reply.send(state.checkpoint());
            }
            Task::Idle(drain) => {
                state.flush();
                // A restarted worker with nothing to replay (or one that
                // just drained its replay backlog) is caught up: the batch
                // path never runs, so the upgrade must happen here too.
                if slot.channel.next_seq() >= slot.recovery_target.load(Ordering::SeqCst) {
                    slot.set_health(ShardHealth::Up);
                }
                if drain {
                    return state;
                }
                slot.channel.wait_for_work(WORKER_IDLE_WAIT);
            }
        }
    }
}

/// Supervision knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Health-probe cadence.
    pub probe_interval: Duration,
    /// A shard with pending work and no heartbeat for this long is marked
    /// `Down` (stall detection).
    pub stall_timeout: Duration,
    /// Backoff policy between restart attempts of one shard.
    pub restart: RetryPolicy,
    /// Restarts per shard before the supervisor gives up and leaves it
    /// `Down` (a crash-loop breaker).
    pub max_restarts_per_shard: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            probe_interval: Duration::from_millis(20),
            stall_timeout: Duration::from_secs(2),
            restart: RetryPolicy {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(500),
                deadline: None,
                jitter_seed: 0x5eed_5a4d,
            },
            max_restarts_per_shard: 16,
        }
    }
}

pub(crate) struct SupervisorMetrics {
    pub(crate) restarts: Counter,
    pub(crate) probes: Counter,
    pub(crate) stalls_detected: Counter,
    pub(crate) shard_health: Vec<Gauge>,
    pub(crate) shard_backlog: Vec<Gauge>,
}

impl SupervisorMetrics {
    pub(crate) fn register(registry: &MetricsRegistry, shards: usize) -> Self {
        Self {
            restarts: registry.counter("serve.supervisor.restarts"),
            probes: registry.counter("serve.supervisor.probes"),
            stalls_detected: registry.counter("serve.supervisor.stalls_detected"),
            shard_health: (0..shards)
                .map(|i| registry.gauge(&format!("serve.shard.{i}.health")))
                .collect(),
            shard_backlog: (0..shards)
                .map(|i| registry.gauge(&format!("serve.shard.{i}.backlog")))
                .collect(),
        }
    }
}

/// The supervisor: owns every shard's worker `JoinHandle`, probes health,
/// and restarts crashed workers from their checkpoints. Runs on its own
/// thread ([`run`](Supervisor::run)) until shutdown, then returns the
/// drained final states.
pub(crate) struct Supervisor {
    pub(crate) slots: Vec<Arc<ShardSlot>>,
    pub(crate) factory: ShardStateFactory,
    pub(crate) cfg: SupervisorConfig,
    pub(crate) injector: Arc<ServeFaultInjector>,
    pub(crate) metrics: SupervisorMetrics,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Hook the router installs so the probe loop can trigger cadence
    /// checkpoints and refresh the quorum watermark.
    pub(crate) on_probe: Box<dyn Fn() + Send>,
}

impl Supervisor {
    pub(crate) fn new_slots(shards: usize) -> Vec<Arc<ShardSlot>> {
        (0..shards).map(|i| Arc::new(ShardSlot::new(i))).collect()
    }

    fn spawn_worker(
        &self,
        slot: &Arc<ShardSlot>,
        state: ServeState,
        origin: Instant,
    ) -> std::io::Result<std::thread::JoinHandle<ServeState>> {
        let slot = slot.clone();
        let injector = self.injector.clone();
        let name = format!("ricd-shard-{}", slot.shard);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || shard_worker(slot, state, injector, origin))
    }

    /// The supervision loop. Spawns the initial workers (fresh, or from
    /// `initial` checkpoints), probes on a cadence, restarts panicked
    /// shards with capped seeded backoff, and — once shutdown is flagged —
    /// drains every channel and returns the final per-shard states.
    pub(crate) fn run(self, initial: Vec<Option<Checkpoint>>) -> Vec<ServeState> {
        let origin = Instant::now();
        let shards = self.slots.len();
        let mut handles: Vec<Option<std::thread::JoinHandle<ServeState>>> = Vec::new();
        let mut finals: Vec<Option<ServeState>> = (0..shards).map(|_| None).collect();
        let mut backoffs: Vec<Option<crate::retry::Backoff>> = (0..shards).map(|_| None).collect();
        // Per-shard not-before restart deadlines: the probe loop never
        // sleeps a backoff inline, so one crash-looping shard can't stop
        // the others from being probed, stall-detected, or restarted.
        let mut restart_at: Vec<Option<Instant>> = (0..shards).map(|_| None).collect();
        // Channel fast-forward and the restart mirror were already set up
        // synchronously by `Router::load_resume_state` (before the listener
        // could route anything); here the checkpoints only seed the states.
        for (slot, ckpt) in self.slots.iter().zip(initial) {
            let state = self.factory.build(slot, ckpt);
            slot.set_health(ShardHealth::Up);
            slot.beat(origin);
            let h = self
                .spawn_worker(slot, state, origin)
                .expect("spawn shard worker");
            handles.push(Some(h));
        }

        loop {
            self.metrics.probes.inc();
            let draining = self.shutdown.load(Ordering::SeqCst);
            if draining {
                for slot in &self.slots {
                    slot.channel.begin_drain();
                }
            }
            for i in 0..shards {
                let slot = &self.slots[i];
                self.metrics.shard_backlog[i].set(slot.channel.backlog() as i64);
                self.metrics.shard_health[i].set(slot.health() as u8 as i64);
                let finished = handles[i].as_ref().is_some_and(|h| h.is_finished());
                if finished {
                    let h = handles[i].take().expect("handle present");
                    match h.join() {
                        Ok(state) => {
                            // Clean exit: only happens on drain.
                            finals[i] = Some(state);
                        }
                        Err(_) => {
                            slot.set_health(ShardHealth::Down);
                            let restarts = slot.restarts.load(Ordering::SeqCst);
                            if restarts >= self.cfg.max_restarts_per_shard {
                                self.factory.registry.event(
                                    "serve.supervisor.gave_up",
                                    &format!("shard {i}: restart cap {restarts} reached"),
                                );
                            } else {
                                let b = backoffs[i].get_or_insert_with(|| self.cfg.restart.start());
                                restart_at[i] = Some(Instant::now() + b.next_delay());
                            }
                        }
                    }
                } else if handles[i].is_some() && slot.health() == ShardHealth::Up {
                    // Healthy again: future crashes back off from scratch.
                    backoffs[i] = None;
                    if slot.channel.backlog() > 0 {
                        let beat = Duration::from_nanos(slot.heartbeat.load(Ordering::SeqCst));
                        if origin.elapsed().saturating_sub(beat) > self.cfg.stall_timeout {
                            self.metrics.stalls_detected.inc();
                            slot.set_health(ShardHealth::Down);
                        }
                    }
                }
                // A crashed shard whose backoff deadline has passed is
                // restarted from its checkpoint mirror.
                if handles[i].is_none() && restart_at[i].is_some_and(|at| Instant::now() >= at) {
                    restart_at[i] = None;
                    let ckpt = slot.last_checkpoint.lock().expect("slot poisoned").clone();
                    let resume_at = ckpt.as_ref().map_or(0, |c| c.next_seq);
                    slot.channel.rewind_to(resume_at);
                    slot.recovery_target
                        .store(slot.channel.lock().tail(), Ordering::SeqCst);
                    let state = self.factory.build(slot, ckpt);
                    slot.set_health(ShardHealth::Recovering);
                    slot.restarts.fetch_add(1, Ordering::SeqCst);
                    self.metrics.restarts.inc();
                    slot.beat(origin);
                    match self.spawn_worker(slot, state, origin) {
                        Ok(h) => handles[i] = Some(h),
                        Err(_) => slot.set_health(ShardHealth::Down),
                    }
                }
            }
            (self.on_probe)();
            if draining
                && handles.iter().all(Option::is_none)
                && restart_at.iter().all(Option::is_none)
            {
                break;
            }
            std::thread::sleep(self.cfg.probe_interval);
        }
        finals
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.unwrap_or_else(|| {
                    // A shard that was Down at drain time never produced a
                    // final state; rebuild one from its checkpoint so join()
                    // always returns a full set.
                    self.factory.build(
                        &self.slots[i],
                        self.slots[i]
                            .last_checkpoint
                            .lock()
                            .expect("slot poisoned")
                            .clone(),
                    )
                })
            })
            .collect()
    }
}
