//! The loopback wire protocol: length-prefixed JSON frames.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON — one [`Request`] per client frame, one [`Response`]
//! per server frame. Length-prefix framing keeps the reader allocation
//! exact (no resynchronization scans) and makes hostile inputs cheap to
//! reject: a header longer than [`MAX_FRAME_LEN`] is refused before a
//! single payload byte is read, the same discipline the binary graph
//! deserializer applies to its headers.
//!
//! JSON (via the workspace `serde_json`) rather than a binary encoding
//! because every payload type already serializes deterministically for the
//! CLI and checkpoint paths — the wire reuses those exact shapes, so a
//! checkpoint taken over the wire is byte-compatible with one written by
//! `StreamingDetector` locally.

use ricd_core::incremental::Checkpoint;
use ricd_core::riskview::RiskVerdict;
use ricd_graph::{ItemId, UserId};
use ricd_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on a frame's payload length (64 MiB). A hostile or corrupt
/// length prefix is rejected without allocating.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// A client request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Append a click-record batch to the stream. `seq` is the client's
    /// batch sequence number; redeliveries (same `seq`) are deduplicated by
    /// the detector, so ingestion is safe under at-least-once delivery.
    Ingest {
        /// Batch sequence number.
        seq: u64,
        /// The batch's `(user, item, clicks)` records.
        records: Vec<(UserId, ItemId, u32)>,
    },
    /// Append a **timestamped** click-record batch to the stream. Same
    /// sequencing and dedup contract as [`Request::Ingest`]; the extra
    /// per-record event-time tick feeds the server's event-time metrics
    /// (`serve.event_ts`). Variants are encoded by name on the wire, so
    /// an old server answers this with a `Malformed`-driven
    /// [`Response::Error`] rather than misparsing it, and old clients
    /// are untouched.
    IngestTimed {
        /// Batch sequence number.
        seq: u64,
        /// The batch's `(user, item, clicks, event-tick)` records.
        records: Vec<(UserId, ItemId, u32, u64)>,
    },
    /// Look up risk verdicts for users and items against the current
    /// [`RiskView`](ricd_core::riskview::RiskView) snapshot.
    QueryRisk {
        /// Users to look up.
        users: Vec<UserId>,
        /// Items to look up.
        items: Vec<ItemId>,
    },
    /// Top-`n` recommendations for `user` from the **cleaned** I2I index
    /// (detected fake co-clicks subtracted).
    Recommend {
        /// The user to recommend for.
        user: UserId,
        /// List length.
        n: usize,
    },
    /// The server's metrics snapshot.
    Metrics {
        /// Strip durations (the byte-stable projection).
        count_only: bool,
    },
    /// A consistent detector checkpoint, serialized after every batch
    /// accepted before this request. On a sharded server this is a
    /// **coordinated** checkpoint: every shard checkpoints at a barrier
    /// and the reply is a [`Response::ManifestWritten`] instead.
    Checkpoint,
    /// The serving topology's health: per-shard state, epochs, backlogs,
    /// restart counts, and the quorum epoch watermark.
    Status,
    /// Graceful shutdown: drain accepted batches, stop accepting.
    Shutdown,
}

/// One shard's health as reported by [`Response::Status`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: u32,
    /// `"up"`, `"recovering"`, or `"down"`.
    pub state: String,
    /// The shard's latest published view epoch.
    pub epoch: u64,
    /// Batches routed to the shard but not yet processed.
    pub backlog: u64,
    /// The shard's next expected local batch sequence number.
    pub next_seq: u64,
    /// How many times the supervisor has restarted this shard.
    pub restarts: u64,
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The batch was accepted into the ingest queue.
    Ingested {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Records queued.
        records: usize,
    },
    /// **Backpressure**: the ingest queue is full and the batch was NOT
    /// accepted. The client owns the retry (the server never buffers
    /// beyond its queue bound).
    Rejected {
        /// Echo of the request's sequence number.
        seq: u64,
        /// The queue's capacity, for client-side pacing.
        queue_capacity: usize,
    },
    /// Risk verdicts from one consistent view snapshot (on a sharded
    /// server: from the merge of every live shard's snapshot).
    Risk {
        /// The answering view's epoch (sharded: the quorum watermark).
        epoch: u64,
        /// Per-user verdicts, in request order.
        users: Vec<(UserId, RiskVerdict)>,
        /// Per-item verdicts, in request order.
        items: Vec<(ItemId, RiskVerdict)>,
        /// Number of detected groups in the view.
        groups: usize,
        /// True when the answer is partial: at least one shard's view is
        /// missing (shard down) or stale (recovering). A monolith server
        /// always answers `false`.
        degraded: bool,
        /// The shards whose views are missing from this answer.
        missing_shards: Vec<u32>,
    },
    /// A cleaned recommendation list.
    Recommendation {
        /// The answering view's epoch.
        epoch: u64,
        /// `(item, score)` descending.
        items: Vec<(ItemId, f32)>,
        /// True when the owning shard was unavailable and the list is
        /// empty-by-outage rather than empty-by-content.
        degraded: bool,
    },
    /// The server's metrics snapshot.
    Metrics(MetricsSnapshot),
    /// A consistent detector checkpoint.
    CheckpointTaken(Checkpoint),
    /// A coordinated sharded checkpoint completed: per-shard checkpoint
    /// files plus `manifest.json` were written atomically under the
    /// server's checkpoint directory.
    ManifestWritten {
        /// The manifest file's path.
        path: String,
        /// Shards covered.
        shards: u32,
        /// The quorum epoch at the checkpoint barrier.
        epoch: u64,
    },
    /// The serving topology's health.
    Status {
        /// The quorum epoch watermark queries are answered at.
        epoch: u64,
        /// Live shards required before the epoch may advance.
        quorum: u32,
        /// True when any shard is not `Up`.
        degraded: bool,
        /// Per-shard health, in shard order.
        shards: Vec<ShardStatus>,
    },
    /// Shutdown acknowledged; the server is draining.
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// An I/O failure (includes EOF mid-frame).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// The payload is not valid UTF-8 JSON of the expected type.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    let payload = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame too large to send"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed JSON frame.
///
/// Distinguishes a clean close (EOF before any header byte →
/// [`WireError::Closed`]) from a truncated frame (EOF mid-header or
/// mid-payload → [`WireError::Io`]).
pub fn read_frame<T: Deserialize>(r: &mut impl Read) -> Result<T, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| WireError::Malformed(format!("invalid utf-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let back: Request = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Ingest {
            seq: 7,
            records: vec![(UserId(1), ItemId(2), 3), (UserId(4), ItemId(5), 6)],
        });
        round_trip(Request::IngestTimed {
            seq: 8,
            records: vec![
                (UserId(1), ItemId(2), 3, 400),
                (UserId(4), ItemId(5), 6, 700),
            ],
        });
        round_trip(Request::QueryRisk {
            users: vec![UserId(9)],
            items: vec![ItemId(1), ItemId(2)],
        });
        round_trip(Request::Recommend {
            user: UserId(3),
            n: 10,
        });
        round_trip(Request::Metrics { count_only: true });
        round_trip(Request::Checkpoint);
        round_trip(Request::Status);
        round_trip(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ingested { seq: 1, records: 5 },
            Response::Rejected {
                seq: 2,
                queue_capacity: 8,
            },
            Response::Risk {
                epoch: 4,
                users: vec![(
                    UserId(1),
                    RiskVerdict {
                        flagged: true,
                        score: 2.5,
                        group: Some(0),
                    },
                )],
                items: vec![(ItemId(9), RiskVerdict::clear())],
                groups: 1,
                degraded: true,
                missing_shards: vec![2],
            },
            Response::Recommendation {
                epoch: 4,
                items: vec![(ItemId(3), 0.5)],
                degraded: false,
            },
            Response::ManifestWritten {
                path: "/tmp/ckpt/manifest.json".into(),
                shards: 4,
                epoch: 9,
            },
            Response::Status {
                epoch: 9,
                quorum: 3,
                degraded: true,
                shards: vec![ShardStatus {
                    shard: 1,
                    state: "recovering".into(),
                    epoch: 8,
                    backlog: 3,
                    next_seq: 17,
                    restarts: 1,
                }],
            },
            Response::ShuttingDown,
            Response::Error {
                message: "busy".into(),
            },
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &resp).unwrap();
            let back: Response = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn several_frames_on_one_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Checkpoint).unwrap();
        write_frame(&mut buf, &Request::Shutdown).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame::<Request>(&mut r).unwrap(), Request::Checkpoint);
        assert_eq!(read_frame::<Request>(&mut r).unwrap(), Request::Shutdown);
        assert!(matches!(
            read_frame::<Request>(&mut r),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn frame_at_exactly_the_cap_is_accepted() {
        // The cap is inclusive: a payload of exactly MAX_FRAME_LEN bytes
        // must survive the write guard and the read guard; one byte more
        // is the hostile-length case below. A JSON string of cap-2 chars
        // serializes to exactly cap bytes (two quote bytes, no escapes).
        let payload = "x".repeat(MAX_FRAME_LEN as usize - 2);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("exact-cap frame must be writable");
        assert_eq!(buf.len(), 4 + MAX_FRAME_LEN as usize);
        assert_eq!(&buf[..4], &MAX_FRAME_LEN.to_be_bytes());
        let back: String =
            read_frame(&mut buf.as_slice()).expect("exact-cap frame must be readable");
        assert_eq!(back, payload);
        // One byte past the cap is refused at the *write* side too.
        let over = "x".repeat(MAX_FRAME_LEN as usize - 1);
        assert!(write_frame(&mut Vec::new(), &over).is_err());
    }

    #[test]
    fn hostile_length_rejected_without_allocation() {
        let mut buf = (MAX_FRAME_LEN + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        match read_frame::<Request>(&mut buf.as_slice()) {
            Err(WireError::TooLarge(n)) => assert_eq!(n, MAX_FRAME_LEN + 1),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_and_payload_are_io_errors() {
        let mut short = vec![0u8, 0];
        assert!(matches!(
            read_frame::<Request>(&mut short.as_slice()),
            Err(WireError::Io(_))
        ));
        short = 10u32.to_be_bytes().to_vec();
        short.extend_from_slice(b"abc"); // 3 of the promised 10 bytes
        assert!(matches!(
            read_frame::<Request>(&mut short.as_slice()),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn garbage_payload_is_malformed_not_fatal() {
        let payload = b"not json at all";
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(payload);
        assert!(matches!(
            read_frame::<Request>(&mut buf.as_slice()),
            Err(WireError::Malformed(_))
        ));
        // Valid JSON of the wrong shape is equally malformed.
        let payload = br#"{"NoSuchVariant":{}}"#;
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(payload);
        assert!(matches!(
            read_frame::<Request>(&mut buf.as_slice()),
            Err(WireError::Malformed(_))
        ));
    }
}
