//! Property tests: wire-frame decoding under byte-level corruption.
//!
//! The serve tier's connection loop distinguishes three failure classes,
//! and its resilience depends on `read_frame` classifying corrupted input
//! correctly:
//!
//! * [`WireError::Malformed`] — framing intact, payload garbage: the
//!   server answers `Error` and **continues** on the same connection.
//! * [`WireError::TooLarge`] — cannot resynchronize past an unread
//!   over-length payload: the server answers `Error` and **closes**.
//! * [`WireError::Io`] / [`WireError::Closed`] — the peer vanished (or
//!   dribbled) mid-frame: the server closes silently.
//!
//! The corruptions are produced by the chaos toolkit's byte-level fault
//! helpers ([`truncate_at`], [`flip_bytes`]), the same primitives the
//! chaos harness drives.

use proptest::prelude::*;
use ricd_engine::fault::{flip_bytes, truncate_at};
use ricd_graph::{ItemId, UserId};
use ricd_serve::wire::{read_frame, write_frame, Request, WireError, MAX_FRAME_LEN};

/// A deterministic sample request: `kind` picks the variant, `seed`
/// perturbs the payload so frames differ in length and content.
fn sample_request(kind: u8, seed: u64) -> Request {
    let s = seed as u32;
    match kind % 5 {
        0 => Request::Ingest {
            seq: seed,
            records: (0..(seed % 17))
                .map(|i| {
                    (
                        UserId(s.wrapping_add(i as u32)),
                        ItemId(i as u32),
                        1 + (i as u32 % 7),
                    )
                })
                .collect(),
        },
        1 => Request::QueryRisk {
            users: (0..(seed % 9))
                .map(|i| UserId(s.wrapping_mul(3) ^ i as u32))
                .collect(),
            items: (0..(seed % 5)).map(|i| ItemId(i as u32)).collect(),
        },
        2 => Request::Recommend {
            user: UserId(s),
            n: (seed % 50) as usize,
        },
        3 => Request::Status,
        _ => Request::Metrics {
            count_only: seed.is_multiple_of(2),
        },
    }
}

fn encode(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, req).expect("encode");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncation anywhere inside a frame is an **error-and-close**: a cut
    /// at the very start is a clean `Closed`, any later cut is `Io`
    /// (unexpected EOF). Never `Ok`, never `Malformed` — a half-read frame
    /// must not be mistaken for a recoverable one.
    #[test]
    fn truncated_frames_classify_as_closed_or_io(
        kind in 0u8..5,
        seed in 0u64..(1u64 << 48),
        cut in 0.0f64..1.0,
    ) {
        let buf = encode(&sample_request(kind, seed));
        let n = ((buf.len() as f64) * cut) as usize; // always < buf.len()
        let cutoff = truncate_at(&buf, n);
        prop_assert_eq!(cutoff.len(), n);
        let decoded: Result<Request, WireError> = read_frame(&mut cutoff.as_slice());
        match decoded {
            Err(WireError::Closed) => prop_assert_eq!(n, 0, "Closed only at a frame boundary"),
            Err(WireError::Io(e)) => {
                prop_assert!(n > 0, "a zero-byte stream is a clean close, got Io: {e}");
            }
            Ok(_) => prop_assert!(false, "truncated frame decoded (cut at {n}/{})", buf.len()),
            Err(other) => prop_assert!(false, "unexpected class for truncation: {other}"),
        }
    }

    /// Payload corruption with intact framing is an **error-and-continue**:
    /// the decode is `Malformed` (or, rarely, a flip that lands on another
    /// valid encoding), and the *next* frame on the same stream still
    /// decodes — the length prefix resynchronizes the stream.
    #[test]
    fn flipped_payloads_are_malformed_and_do_not_desync_the_stream(
        kind in 0u8..5,
        seed in 0u64..(1u64 << 48),
        flip_seed in 0u64..(1u64 << 48),
        flips in 1usize..9,
    ) {
        let frame = encode(&sample_request(kind, seed));
        let follow = encode(&sample_request(kind.wrapping_add(1), seed ^ 0xa5a5));
        // Corrupt only payload bytes: the 4-byte length header stays
        // intact, so framing survives.
        let mut corrupted = frame[..4].to_vec();
        corrupted.extend(flip_bytes(&frame[4..], flip_seed, flips));
        prop_assert_eq!(corrupted.len(), frame.len());
        let mut stream = corrupted;
        stream.extend_from_slice(&follow);

        let mut r = stream.as_slice();
        let first: Result<Request, WireError> = read_frame(&mut r);
        match first {
            // xor-flips can no-op or land on an equivalent encoding; both
            // fine — the property under test is the *classification*.
            Ok(_) => {}
            Err(WireError::Malformed(_)) => {}
            Err(other) => prop_assert!(false, "payload corruption misclassified: {other}"),
        }
        // Framing resynchronized: the following frame decodes cleanly.
        let back: Request = read_frame(&mut r).expect("next frame survives corruption");
        prop_assert_eq!(back, sample_request(kind.wrapping_add(1), seed ^ 0xa5a5));
    }

    /// An over-cap length prefix is `TooLarge` — the error-and-close class
    /// — no matter what follows it, and without reading the payload.
    #[test]
    fn oversized_length_prefixes_classify_as_too_large(
        excess in 1u32..1_000_000,
        garbage in 0usize..64,
    ) {
        let len = MAX_FRAME_LEN.saturating_add(excess);
        let mut buf = len.to_be_bytes().to_vec();
        buf.extend(std::iter::repeat_n(0xAB, garbage));
        let decoded: Result<Request, WireError> = read_frame(&mut buf.as_slice());
        match decoded {
            Err(WireError::TooLarge(n)) => prop_assert_eq!(n, len),
            other => prop_assert!(false, "expected TooLarge, got {other:?}"),
        }
    }

    /// Clean frames round-trip — the fuzz above is meaningful only if the
    /// uncorrupted path is lossless for every generated request.
    #[test]
    fn clean_frames_round_trip(kind in 0u8..5, seed in 0u64..(1u64 << 48)) {
        let req = sample_request(kind, seed);
        let buf = encode(&req);
        let back: Request = read_frame(&mut buf.as_slice()).expect("round trip");
        prop_assert_eq!(back, req);
    }
}
