//! Group-by aggregations over a [`ClickTable`].
//!
//! These reproduce the MaxCompute-side SQL the paper's analysis implies:
//! per-user and per-item `SUM(click)`, `COUNT(*)`, `MAX`, `MIN`, mean and
//! standard deviation (Table V's columns), and top-k selection by any of
//! those aggregates.

use crate::click_table::ClickTable;
use serde::{Deserialize, Serialize};

/// Aggregate statistics for one group (one user or one item).
///
/// For an item group these are exactly Table V's columns: `Total_click`,
/// `Mean`, `Stdev`, `User_num` (here `count`), `Max`, `Min`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// `SUM(click)` within the group.
    pub total_clicks: u64,
    /// Number of rows in the group (distinct counterpart vertices).
    pub count: u32,
    /// Mean clicks per row; 0 for an empty group.
    pub mean: f64,
    /// Population standard deviation of clicks per row.
    pub stdev: f64,
    /// Largest single click count in the group.
    pub max: u32,
    /// Smallest single click count in the group (0 for an empty group).
    pub min: u32,
}

impl GroupStats {
    fn from_values(values: &[u32]) -> Self {
        if values.is_empty() {
            return GroupStats::default();
        }
        let total: u64 = values.iter().map(|&c| c as u64).sum();
        let n = values.len() as f64;
        let mean = total as f64 / n;
        let var = values
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        GroupStats {
            total_clicks: total,
            count: values.len() as u32,
            mean,
            stdev: var.sqrt(),
            max: *values.iter().max().unwrap(),
            min: *values.iter().min().unwrap(),
        }
    }
}

/// Per-group aggregation keyed by a dense id column.
fn group_stats(keys: &[u32], clicks: &[u32], id_space: usize) -> Vec<GroupStats> {
    // Bucket click values per key, then fold each bucket.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); id_space];
    for (&k, &c) in keys.iter().zip(clicks) {
        buckets[k as usize].push(c);
    }
    buckets.iter().map(|b| GroupStats::from_values(b)).collect()
}

/// `GROUP BY user`: one [`GroupStats`] per user id in `0..user_id_space`.
pub fn per_user_stats(t: &ClickTable) -> Vec<GroupStats> {
    group_stats(t.user_column(), t.click_column(), t.user_id_space())
}

/// `GROUP BY item`: one [`GroupStats`] per item id in `0..item_id_space`.
pub fn per_item_stats(t: &ClickTable) -> Vec<GroupStats> {
    group_stats(t.item_column(), t.click_column(), t.item_id_space())
}

/// Top-k selection over a score vector, returning `(id, score)` pairs in
/// non-increasing score order (ties broken by smaller id first).
///
/// This backs the framework's "select the top-k nodes for analysis and
/// punishment" requirement (Section III-B, property 4a).
#[derive(Clone, Debug)]
pub struct TopK {
    /// `(id, score)` in descending score order.
    pub entries: Vec<(u32, f64)>,
}

impl TopK {
    /// Selects the `k` largest scores. `NaN` scores are skipped.
    pub fn select(scores: impl IntoIterator<Item = f64>, k: usize) -> Self {
        let mut entries: Vec<(u32, f64)> = scores
            .into_iter()
            .enumerate()
            .filter(|(_, s)| !s.is_nan())
            .map(|(i, s)| (i as u32, s))
            .collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        entries.truncate(k);
        TopK { entries }
    }

    /// The selected ids in rank order.
    pub fn ids(&self) -> Vec<u32> {
        self.entries.iter().map(|&(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ClickTable {
        // u0 clicks i0 x2, i1 x4 ; u1 clicks i0 x6
        ClickTable::from_rows([(0, 0, 2), (0, 1, 4), (1, 0, 6)])
    }

    #[test]
    fn per_user_aggregates() {
        let s = per_user_stats(&table());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].total_clicks, 6);
        assert_eq!(s[0].count, 2);
        assert!((s[0].mean - 3.0).abs() < 1e-12);
        assert!((s[0].stdev - 1.0).abs() < 1e-12);
        assert_eq!(s[0].max, 4);
        assert_eq!(s[0].min, 2);
        assert_eq!(s[1].total_clicks, 6);
        assert_eq!(s[1].count, 1);
        assert!(s[1].stdev.abs() < 1e-12);
    }

    #[test]
    fn per_item_aggregates() {
        let s = per_item_stats(&table());
        assert_eq!(s[0].total_clicks, 8);
        assert_eq!(s[0].count, 2);
        assert_eq!(s[1].total_clicks, 4);
        assert_eq!(s[1].count, 1);
    }

    #[test]
    fn empty_groups_are_default() {
        let t = ClickTable::from_rows([(0, 3, 1)]);
        let s = per_item_stats(&t);
        assert_eq!(s.len(), 4);
        assert_eq!(s[1], GroupStats::default());
        assert_eq!(s[3].total_clicks, 1);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let t = TopK::select([1.0, 5.0, 3.0, 5.0], 3);
        assert_eq!(t.ids(), vec![1, 3, 2]);
    }

    #[test]
    fn top_k_skips_nan() {
        let t = TopK::select([f64::NAN, 2.0, 1.0], 10);
        assert_eq!(t.ids(), vec![1, 2]);
    }

    #[test]
    fn table5_shape_suspicious_vs_normal() {
        // Reproduce the Table V contrast in miniature: a "suspicious" item
        // with few heavy clickers vs a "normal" item with many light ones.
        let rows: Vec<(u32, u32, u32)> = (0..4)
            .map(|u| (u, 0, 10)) // item 0: 4 users x 10 clicks
            .chain((0..20).map(|u| (u, 1, 2))) // item 1: 20 users x 2 clicks
            .collect();
        let s = per_item_stats(&ClickTable::from_rows(rows));
        assert_eq!(s[0].total_clicks, 40);
        assert_eq!(s[1].total_clicks, 40);
        assert!(
            s[0].count < s[1].count / 2,
            "suspicious item has far fewer users"
        );
        assert!(
            s[0].mean > s[1].mean,
            "suspicious item has higher mean clicks/user"
        );
    }
}
