//! The columnar `TaoBao_UI_Clicks`-style table.

use ricd_graph::{BipartiteGraph, GraphBuilder, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// A column-oriented click table with schema `(User_ID, Item_ID, Click)`.
///
/// One row per user–item pair; the `Click` column is the aggregated count
/// (see Section IV: record `(1, 1, 3)` means user 1 clicked item 1 three
/// times). Rows are kept sorted by `(user, item)` and deduplicated (counts
/// summed) on construction, so the table is always in "canonical" form.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClickTable {
    user_id: Vec<u32>,
    item_id: Vec<u32>,
    click: Vec<u32>,
}

impl ClickTable {
    /// Builds the canonical table from raw rows; duplicates merge by sum,
    /// zero-click rows are dropped.
    pub fn from_rows(rows: impl IntoIterator<Item = (u32, u32, u32)>) -> Self {
        let mut rows: Vec<(u32, u32, u32)> = rows.into_iter().filter(|r| r.2 > 0).collect();
        rows.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut table = ClickTable::default();
        for (u, v, c) in rows {
            match (table.user_id.last(), table.item_id.last()) {
                (Some(&lu), Some(&lv)) if lu == u && lv == v => {
                    let last = table.click.last_mut().unwrap();
                    *last = last.saturating_add(c);
                }
                _ => {
                    table.user_id.push(u);
                    table.item_id.push(v);
                    table.click.push(c);
                }
            }
        }
        table
    }

    /// Number of rows (distinct user–item pairs) — Table I's `Edge`.
    pub fn num_rows(&self) -> usize {
        self.click.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.click.is_empty()
    }

    /// Sum of the click column — Table I's `Total_click`.
    pub fn total_clicks(&self) -> u64 {
        self.click.iter().map(|&c| c as u64).sum()
    }

    /// Row access by index: `(user, item, click)`.
    pub fn row(&self, i: usize) -> (u32, u32, u32) {
        (self.user_id[i], self.item_id[i], self.click[i])
    }

    /// Iterator over all rows in canonical `(user, item)` order.
    pub fn rows(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.num_rows()).map(move |i| self.row(i))
    }

    /// The raw user column.
    pub fn user_column(&self) -> &[u32] {
        &self.user_id
    }

    /// The raw item column.
    pub fn item_column(&self) -> &[u32] {
        &self.item_id
    }

    /// The raw click column.
    pub fn click_column(&self) -> &[u32] {
        &self.click
    }

    /// Largest user id plus one (0 if empty).
    pub fn user_id_space(&self) -> usize {
        self.user_id.iter().max().map_or(0, |&m| m as usize + 1)
    }

    /// Largest item id plus one (0 if empty).
    pub fn item_id_space(&self) -> usize {
        self.item_id.iter().max().map_or(0, |&m| m as usize + 1)
    }

    /// Keeps only rows for which `pred(user, item, click)` holds.
    pub fn filter(&self, mut pred: impl FnMut(u32, u32, u32) -> bool) -> ClickTable {
        let mut t = ClickTable::default();
        for (u, v, c) in self.rows() {
            if pred(u, v, c) {
                t.user_id.push(u);
                t.item_id.push(v);
                t.click.push(c);
            }
        }
        t
    }

    /// Converts to the graph form. `reserve_users` / `reserve_items` pad the
    /// vertex spaces (ids are shared, so pass the full id spaces when the
    /// table is a sample of a larger population).
    pub fn to_graph_with_capacity(
        &self,
        reserve_users: usize,
        reserve_items: usize,
    ) -> BipartiteGraph {
        let mut b = GraphBuilder::with_capacity(self.num_rows());
        b.reserve_users(reserve_users).reserve_items(reserve_items);
        for (u, v, c) in self.rows() {
            b.add_click(UserId(u), ItemId(v), c);
        }
        b.build()
    }

    /// Converts to the graph form sized by the ids present.
    pub fn to_graph(&self) -> BipartiteGraph {
        self.to_graph_with_capacity(0, 0)
    }

    /// Converts a graph back to the relational form.
    pub fn from_graph(g: &BipartiteGraph) -> Self {
        let mut t = ClickTable::default();
        for (u, v, c) in g.edges() {
            t.user_id.push(u.0);
            t.item_id.push(v.0);
            t.click.push(c);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_canonicalizes() {
        let t = ClickTable::from_rows([(1, 1, 2), (0, 0, 1), (1, 1, 3), (0, 5, 0)]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0), (0, 0, 1));
        assert_eq!(t.row(1), (1, 1, 5));
        assert_eq!(t.total_clicks(), 6);
    }

    #[test]
    fn id_spaces() {
        let t = ClickTable::from_rows([(3, 7, 1)]);
        assert_eq!(t.user_id_space(), 4);
        assert_eq!(t.item_id_space(), 8);
        assert_eq!(ClickTable::default().user_id_space(), 0);
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let t = ClickTable::from_rows([(0, 0, 1), (0, 1, 10), (1, 0, 3)]);
        let f = t.filter(|_, _, c| c >= 3);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.total_clicks(), 13);
    }

    #[test]
    fn graph_round_trip() {
        let t = ClickTable::from_rows([(0, 0, 2), (0, 1, 1), (2, 0, 4)]);
        let g = t.to_graph();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.total_clicks(), 7);
        let t2 = ClickTable::from_graph(&g);
        assert_eq!(t, t2);
    }

    #[test]
    fn graph_capacity_padding() {
        let t = ClickTable::from_rows([(0, 0, 1)]);
        let g = t.to_graph_with_capacity(100, 50);
        assert_eq!(g.num_users(), 100);
        assert_eq!(g.num_items(), 50);
    }

    #[test]
    fn serde_json_round_trip() {
        let t = ClickTable::from_rows([(0, 0, 2), (9, 4, 1)]);
        let s = serde_json::to_string(&t).unwrap();
        let t2: ClickTable = serde_json::from_str(&s).unwrap();
        assert_eq!(t, t2);
    }
}
