//! Table I/O: TSV (human-auditable) and JSON (experiment artifacts).

use crate::click_table::ClickTable;
use std::io::{self, BufRead, Write};

/// Writes the table as `user \t item \t click` lines.
pub fn write_tsv<W: Write>(t: &ClickTable, mut w: W) -> io::Result<()> {
    for (u, v, c) in t.rows() {
        writeln!(w, "{u}\t{v}\t{c}")?;
    }
    Ok(())
}

/// The result of a lossy TSV read: the table built from every parseable
/// record, plus `(line, message)` for everything quarantined.
#[derive(Debug)]
pub struct LossyRead {
    /// Table over the clean subset of records.
    pub table: ClickTable,
    /// One `(1-based line, message)` entry per malformed line, in order.
    pub errors: Vec<(usize, String)>,
}

fn parse_record(trimmed: &str, idx: usize) -> Result<(u32, u32, u32), String> {
    let mut parts = trimmed.split('\t').map(str::trim);
    let mut next = |what: &str| -> Result<u32, String> {
        parts
            .next()
            .ok_or_else(|| format!("line {}: missing {what}", idx + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad {what}: {e}", idx + 1))
    };
    let u = next("user id")?;
    let v = next("item id")?;
    let c = next("click count")?;
    Ok((u, v, c))
}

/// Reads a TSV click table (same dialect as `ricd_graph::io::read_tsv`:
/// blank lines and `#` comments skipped, duplicates merged).
pub fn read_tsv<R: BufRead>(r: R) -> Result<ClickTable, String> {
    let mut rows = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", idx + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        rows.push(parse_record(trimmed, idx)?);
    }
    Ok(ClickTable::from_rows(rows))
}

/// Lossy [`read_tsv`]: malformed lines — including lines that are not
/// valid UTF-8 — are quarantined into the error report instead of
/// aborting; underlying I/O failures still abort.
pub fn read_tsv_lossy<R: BufRead>(r: R) -> Result<LossyRead, String> {
    read_tsv_lossy_inner(r, None)
}

/// [`read_tsv_lossy`] that additionally records `table.records_ingested`
/// and `table.lines_quarantined` counters in `metrics`.
pub fn read_tsv_lossy_metered<R: BufRead>(
    r: R,
    metrics: &ricd_obs::MetricsRegistry,
) -> Result<LossyRead, String> {
    read_tsv_lossy_inner(r, Some(metrics))
}

fn read_tsv_lossy_inner<R: BufRead>(
    mut r: R,
    metrics: Option<&ricd_obs::MetricsRegistry>,
) -> Result<LossyRead, String> {
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    let mut raw = Vec::new();
    let mut idx = 0usize;
    loop {
        raw.clear();
        if r.read_until(b'\n', &mut raw)
            .map_err(|e| format!("line {}: {e}", idx + 1))?
            == 0
        {
            break;
        }
        match std::str::from_utf8(&raw) {
            Ok(line) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() && !trimmed.starts_with('#') {
                    match parse_record(trimmed, idx) {
                        Ok(rec) => rows.push(rec),
                        Err(message) => errors.push((idx + 1, message)),
                    }
                }
            }
            Err(_) => errors.push((idx + 1, format!("line {}: not valid UTF-8", idx + 1))),
        }
        idx += 1;
    }
    if let Some(m) = metrics {
        m.inc_by("table.records_ingested", rows.len() as u64);
        m.inc_by("table.lines_quarantined", errors.len() as u64);
    }
    Ok(LossyRead {
        table: ClickTable::from_rows(rows),
        errors,
    })
}

/// Serializes the table to a JSON string (columnar layout).
///
/// Infallible for any table this crate can build, but surfaced as a
/// `Result` so callers handle serializer failures as data errors rather
/// than a panic in release pipelines.
pub fn to_json(t: &ClickTable) -> Result<String, String> {
    serde_json::to_string(t).map_err(|e| e.to_string())
}

/// Deserializes a JSON table produced by [`to_json`].
pub fn from_json(s: &str) -> Result<ClickTable, String> {
    serde_json::from_str(s).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_round_trip() {
        let t = ClickTable::from_rows([(0, 1, 3), (2, 0, 1)]);
        let mut buf = Vec::new();
        write_tsv(&t, &mut buf).unwrap();
        let t2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn tsv_merges_duplicates() {
        let t = read_tsv("0\t0\t1\n0\t0\t2\n".as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.total_clicks(), 3);
    }

    #[test]
    fn tsv_errors_carry_line_numbers() {
        let err = read_tsv("0\t0\t1\nnope\n".as_bytes()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn json_round_trip() {
        let t = ClickTable::from_rows([(7, 8, 9)]);
        let t2 = from_json(&to_json(&t).unwrap()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn lossy_read_recovers_clean_rows() {
        let text = "0\t0\t1\ngarbage\n1\t1\t2\n9999999999\t0\t1\n";
        let r = read_tsv_lossy(text.as_bytes()).unwrap();
        assert_eq!(r.table.num_rows(), 2);
        let lines: Vec<usize> = r.errors.iter().map(|&(l, _)| l).collect();
        assert_eq!(lines, vec![2, 4]);
        assert!(r.errors[1].1.contains("bad user id"), "{}", r.errors[1].1);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn metered_lossy_read_counts_rows_and_quarantines() {
        let text = "0\t0\t1\ngarbage\n1\t1\t2\n9999999999\t0\t1\n";
        let registry = ricd_obs::MetricsRegistry::new();
        let r = read_tsv_lossy_metered(text.as_bytes(), &registry).unwrap();
        assert_eq!(r.errors.len(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("table.records_ingested"), Some(2));
        assert_eq!(snap.counter("table.lines_quarantined"), Some(2));
    }
}
