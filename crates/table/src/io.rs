//! Table I/O: TSV (human-auditable) and JSON (experiment artifacts).

use crate::click_table::ClickTable;
use std::io::{self, BufRead, Write};

/// Writes the table as `user \t item \t click` lines.
pub fn write_tsv<W: Write>(t: &ClickTable, mut w: W) -> io::Result<()> {
    for (u, v, c) in t.rows() {
        writeln!(w, "{u}\t{v}\t{c}")?;
    }
    Ok(())
}

/// Reads a TSV click table (same dialect as `ricd_graph::io::read_tsv`:
/// blank lines and `#` comments skipped, duplicates merged).
pub fn read_tsv<R: BufRead>(r: R) -> Result<ClickTable, String> {
    let mut rows = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", idx + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t').map(str::trim);
        let mut next = |what: &str| -> Result<u32, String> {
            parts
                .next()
                .ok_or_else(|| format!("line {}: missing {what}", idx + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad {what}: {e}", idx + 1))
        };
        let u = next("user id")?;
        let v = next("item id")?;
        let c = next("click count")?;
        rows.push((u, v, c));
    }
    Ok(ClickTable::from_rows(rows))
}

/// Serializes the table to a JSON string (columnar layout).
pub fn to_json(t: &ClickTable) -> String {
    serde_json::to_string(t).expect("ClickTable serialization cannot fail")
}

/// Deserializes a JSON table produced by [`to_json`].
pub fn from_json(s: &str) -> Result<ClickTable, String> {
    serde_json::from_str(s).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_round_trip() {
        let t = ClickTable::from_rows([(0, 1, 3), (2, 0, 1)]);
        let mut buf = Vec::new();
        write_tsv(&t, &mut buf).unwrap();
        let t2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn tsv_merges_duplicates() {
        let t = read_tsv("0\t0\t1\n0\t0\t2\n".as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.total_clicks(), 3);
    }

    #[test]
    fn tsv_errors_carry_line_numbers() {
        let err = read_tsv("0\t0\t1\nnope\n".as_bytes()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn json_round_trip() {
        let t = ClickTable::from_rows([(7, 8, 9)]);
        let t2 = from_json(&to_json(&t)).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("not json").is_err());
    }
}
