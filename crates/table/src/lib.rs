#![warn(missing_docs)]

//! # ricd-table — columnar click-table store
//!
//! The paper runs its preprocessing (Table I/II statistics, threshold
//! derivation, stratified sampling of the raw log) on **MaxCompute**,
//! Alibaba's data-processing platform. This crate is the laptop-scale
//! substitute: a columnar [`ClickTable`] with the handful of relational
//! operations the pipeline needs — group-by aggregation per user and per
//! item, filtering, top-k, stratified sampling — plus TSV/JSON I/O.
//!
//! A [`ClickTable`] is the *relational* form of the data
//! (`User_ID, Item_ID, Click` — one row per pair, as in the paper's
//! `TaoBao_UI_Clicks`); [`ricd_graph::BipartiteGraph`] is the *graph* form.
//! [`ClickTable::to_graph`] and [`ClickTable::from_graph`] convert between
//! them losslessly.

pub mod aggregate;
pub mod click_table;
pub mod io;
pub mod sampling;

pub use aggregate::{GroupStats, TopK};
pub use click_table::ClickTable;
pub use sampling::{stratified_sample_items, StratifiedConfig};
