//! Stratified sampling of items by popularity.
//!
//! Section IV: "Without loss of generality, we conduct stratified sampling on
//! various items to generate a representative bipartite graph." We reproduce
//! that step: items are bucketed into popularity strata (by total clicks,
//! log-scaled bounds) and a configurable fraction of each stratum is kept,
//! preserving the heavy-tail shape while shrinking the table.

use crate::aggregate::per_item_stats;
use crate::click_table::ClickTable;
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`stratified_sample_items`].
#[derive(Clone, Debug)]
pub struct StratifiedConfig {
    /// Stratum boundaries on per-item total clicks, ascending. An item with
    /// total clicks `t` falls into the first stratum whose bound is `> t`;
    /// items above the last bound form the top stratum.
    pub bounds: Vec<u64>,
    /// Fraction of items to keep per stratum; must have `bounds.len() + 1`
    /// entries (one per stratum, including the top stratum).
    pub keep_fraction: Vec<f64>,
}

impl StratifiedConfig {
    /// A uniform sample: one stratum, keep `frac` of all items.
    pub fn uniform(frac: f64) -> Self {
        Self {
            bounds: Vec::new(),
            keep_fraction: vec![frac],
        }
    }

    /// Power-of-ten strata (`<10`, `<100`, `<1000`, `≥1000`) keeping the hot
    /// tail intact — the shape used for "representative" e-commerce samples.
    pub fn popularity_preserving(base_frac: f64) -> Self {
        Self {
            bounds: vec![10, 100, 1000],
            keep_fraction: vec![base_frac, base_frac, (base_frac * 2.0).min(1.0), 1.0],
        }
    }

    fn stratum_of(&self, total: u64) -> usize {
        self.bounds
            .iter()
            .position(|&b| total < b)
            .unwrap_or(self.bounds.len())
    }

    fn validate(&self) -> Result<(), String> {
        if self.keep_fraction.len() != self.bounds.len() + 1 {
            return Err(format!(
                "keep_fraction must have {} entries, has {}",
                self.bounds.len() + 1,
                self.keep_fraction.len()
            ));
        }
        if self.bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err("bounds must be strictly ascending".into());
        }
        if self
            .keep_fraction
            .iter()
            .any(|&f| !(0.0..=1.0).contains(&f))
        {
            return Err("keep fractions must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// Samples items stratified by popularity and returns the table restricted
/// to rows whose item survived.
///
/// Sampling is *per item* (all of an item's rows are kept or dropped
/// together) so per-item statistics stay exact for surviving items.
pub fn stratified_sample_items<R: Rng>(
    t: &ClickTable,
    cfg: &StratifiedConfig,
    rng: &mut R,
) -> Result<ClickTable, String> {
    cfg.validate()?;
    let stats = per_item_stats(t);
    // Group item ids by stratum.
    let mut strata: Vec<Vec<u32>> = vec![Vec::new(); cfg.bounds.len() + 1];
    for (item, s) in stats.iter().enumerate() {
        if s.count > 0 {
            strata[cfg.stratum_of(s.total_clicks)].push(item as u32);
        }
    }
    let mut keep = vec![false; t.item_id_space()];
    for (stratum, items) in strata.iter_mut().enumerate() {
        let frac = cfg.keep_fraction[stratum];
        let n = ((items.len() as f64) * frac).round() as usize;
        items.shuffle(rng);
        for &item in items.iter().take(n) {
            keep[item as usize] = true;
        }
    }
    Ok(t.filter(|_, v, _| keep[v as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> ClickTable {
        // 10 cold items (1 click each), 2 hot items (2000 clicks each).
        let mut rows: Vec<(u32, u32, u32)> = (0..10).map(|v| (v, v, 1)).collect();
        rows.push((0, 100, 2000));
        rows.push((1, 101, 2000));
        ClickTable::from_rows(rows)
    }

    #[test]
    fn uniform_full_keep_is_identity() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(1);
        let s = stratified_sample_items(&t, &StratifiedConfig::uniform(1.0), &mut rng).unwrap();
        assert_eq!(s, t);
    }

    #[test]
    fn uniform_zero_keep_is_empty() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(1);
        let s = stratified_sample_items(&t, &StratifiedConfig::uniform(0.0), &mut rng).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn popularity_preserving_keeps_hot_tail() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = StratifiedConfig::popularity_preserving(0.5);
        let s = stratified_sample_items(&t, &cfg, &mut rng).unwrap();
        // Hot items always survive.
        assert!(s.rows().any(|(_, v, _)| v == 100));
        assert!(s.rows().any(|(_, v, _)| v == 101));
        // Roughly half the cold items survive.
        let cold = s.rows().filter(|&(_, v, _)| v < 10).count();
        assert!((3..=7).contains(&cold), "cold items kept: {cold}");
    }

    #[test]
    fn item_rows_kept_or_dropped_atomically() {
        // Item 5 has rows from 3 users; it must survive whole or not at all.
        let mut rows = vec![(0, 5, 3), (1, 5, 4), (2, 5, 5)];
        rows.extend((0..20).map(|v| (v, v + 10, 1)));
        let t = ClickTable::from_rows(rows);
        let mut rng = StdRng::seed_from_u64(7);
        let s = stratified_sample_items(&t, &StratifiedConfig::uniform(0.5), &mut rng).unwrap();
        let n = s.rows().filter(|&(_, v, _)| v == 5).count();
        assert!(n == 0 || n == 3, "item 5 rows kept: {n}");
    }

    #[test]
    fn bad_configs_rejected() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = StratifiedConfig {
            bounds: vec![10, 5],
            keep_fraction: vec![1.0, 1.0, 1.0],
        };
        assert!(stratified_sample_items(&t, &cfg, &mut rng).is_err());
        let cfg = StratifiedConfig {
            bounds: vec![10],
            keep_fraction: vec![1.0],
        };
        assert!(stratified_sample_items(&t, &cfg, &mut rng).is_err());
        let cfg = StratifiedConfig {
            bounds: vec![],
            keep_fraction: vec![1.5],
        };
        assert!(stratified_sample_items(&t, &cfg, &mut rng).is_err());
    }

    #[test]
    fn stratum_assignment() {
        let cfg = StratifiedConfig::popularity_preserving(0.1);
        assert_eq!(cfg.stratum_of(0), 0);
        assert_eq!(cfg.stratum_of(9), 0);
        assert_eq!(cfg.stratum_of(10), 1);
        assert_eq!(cfg.stratum_of(999), 2);
        assert_eq!(cfg.stratum_of(1000), 3);
        assert_eq!(cfg.stratum_of(u64::MAX), 3);
    }
}
