//! Property tests for the columnar click table: canonicalization against a
//! reference model, aggregation consistency, and sampling invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ricd_table::aggregate::{per_item_stats, per_user_stats};
use ricd_table::sampling::{stratified_sample_items, StratifiedConfig};
use ricd_table::{io, ClickTable};
use std::collections::BTreeMap;

fn rows() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..30, 0u32..20, 0u32..15), 0..200)
}

proptest! {
    /// from_rows equals a BTreeMap accumulation (dropping zero-click rows).
    #[test]
    fn canonicalization_matches_model(raw in rows()) {
        let t = ClickTable::from_rows(raw.clone());
        let mut model: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for (u, v, c) in raw {
            if c > 0 {
                *model.entry((u, v)).or_default() += c as u64;
            }
        }
        prop_assert_eq!(t.num_rows(), model.len());
        let flat: Vec<((u32, u32), u64)> = t.rows().map(|(u, v, c)| ((u, v), c as u64)).collect();
        let want: Vec<((u32, u32), u64)> = model.into_iter().collect();
        prop_assert_eq!(flat, want, "rows sorted by (user, item) with summed clicks");
    }

    /// Group-by totals tie back to the grand total, both sides.
    #[test]
    fn aggregation_totals_consistent(raw in rows()) {
        let t = ClickTable::from_rows(raw);
        let grand = t.total_clicks();
        let by_user: u64 = per_user_stats(&t).iter().map(|s| s.total_clicks).sum();
        let by_item: u64 = per_item_stats(&t).iter().map(|s| s.total_clicks).sum();
        prop_assert_eq!(by_user, grand);
        prop_assert_eq!(by_item, grand);
        // Group row counts tie back to the table's row count.
        let rows_by_user: u64 = per_user_stats(&t).iter().map(|s| s.count as u64).sum();
        prop_assert_eq!(rows_by_user as usize, t.num_rows());
    }

    /// Per-group min ≤ mean ≤ max, and stdev is finite and non-negative.
    #[test]
    fn group_stats_are_sane(raw in rows()) {
        let t = ClickTable::from_rows(raw);
        for s in per_item_stats(&t) {
            if s.count > 0 {
                prop_assert!(s.min as f64 <= s.mean + 1e-9);
                prop_assert!(s.mean <= s.max as f64 + 1e-9);
                prop_assert!(s.stdev >= 0.0 && s.stdev.is_finite());
            }
        }
    }

    /// TSV and JSON round-trips preserve the table exactly.
    #[test]
    fn io_round_trips(raw in rows()) {
        let t = ClickTable::from_rows(raw);
        let mut buf = Vec::new();
        io::write_tsv(&t, &mut buf).unwrap();
        prop_assert_eq!(&io::read_tsv(buf.as_slice()).unwrap(), &t);
        prop_assert_eq!(&io::from_json(&io::to_json(&t).unwrap()).unwrap(), &t);
    }

    /// Graph conversion round-trips.
    #[test]
    fn graph_round_trips(raw in rows()) {
        let t = ClickTable::from_rows(raw);
        let g = t.to_graph();
        prop_assert_eq!(g.total_clicks(), t.total_clicks());
        prop_assert_eq!(ClickTable::from_graph(&g), t);
    }

    /// Stratified sampling keeps whole items, is a subset, and respects the
    /// extremes.
    #[test]
    fn sampling_invariants(raw in rows(), seed in 0u64..1000, frac in 0.0f64..=1.0) {
        let t = ClickTable::from_rows(raw);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = stratified_sample_items(&t, &StratifiedConfig::uniform(frac), &mut rng).unwrap();
        // Subset: every sampled row exists identically in the source.
        let source: BTreeMap<(u32, u32), u32> = t.rows().map(|(u, v, c)| ((u, v), c)).collect();
        for (u, v, c) in s.rows() {
            prop_assert_eq!(source.get(&(u, v)), Some(&c));
        }
        // Atomicity: an item is either fully present or fully absent.
        let stats_src = per_item_stats(&t);
        let stats_smp = per_item_stats(&s);
        for (item, smp) in stats_smp.iter().enumerate() {
            if smp.count > 0 {
                prop_assert_eq!(smp, &stats_src[item], "item {} partially sampled", item);
            }
        }
        if frac == 1.0 {
            prop_assert_eq!(&s, &t);
        }
    }
}
