//! Dissects one planted attack the way Section IV of the paper does:
//! Table III (a crowd worker's click records) vs Table IV (a normal user's),
//! Table V (target item vs click-matched normal item), and the I2I-score
//! manipulation itself (Fig 3 / Eq 1-3).
//!
//! ```sh
//! cargo run --release --example attack_anatomy
//! ```

use fake_click_detection::core::i2i;
use fake_click_detection::eval::figures::{section4_analysis, table5, tables3_4, ClickRecordRow};
use fake_click_detection::prelude::*;

fn main() {
    let dataset = generate(&DatasetConfig::default(), &AttackConfig::default())
        .expect("default config is valid");
    let t_hot = 1_000;

    let (suspect, normal) = tables3_4(&dataset, t_hot);
    println!("=== Table III: part of the click record of a suspect ===");
    print_records(&suspect[..suspect.len().min(8)]);
    println!("\n=== Table IV: part of the click record of an ordinary user ===");
    print_records(&normal[..normal.len().min(8)]);

    if let Some((sus, norm)) = table5(&dataset) {
        println!("\n=== Table V: suspicious item vs click-matched normal item ===");
        println!("              total  mean   stdev  users  max  min");
        println!(
            "suspicious  {:>7}  {:>5.2} {:>6.2}  {:>5}  {:>3}  {:>3}",
            sus.total_click, sus.mean, sus.stdev, sus.user_num, sus.max, sus.min
        );
        println!(
            "normal      {:>7}  {:>5.2} {:>6.2}  {:>5}  {:>3}  {:>3}",
            norm.total_click, norm.mean, norm.stdev, norm.user_num, norm.max, norm.min
        );
    }

    // The I2I manipulation: the target's relevance score against the ridden
    // hot item, which is what earns the attacker exposure (Eq 1).
    let group = &dataset.truth.groups[0];
    let hot = group.ridden_hot_items[0];
    let target = group.targets[0];
    let score = i2i::i2i_score(&dataset.graph, hot, target);
    let ranking = i2i::i2i_ranking(&dataset.graph, hot);
    let rank = ranking.iter().position(|&(v, _)| v == target);
    println!("\n=== The manipulated I2I score (Eq 1) ===");
    println!("hot item {hot} -> target {target}: I2I score {score:.4}");
    match rank {
        Some(r) => println!(
            "the target ranks #{} of {} in the hot item's recommendation list",
            r + 1,
            ranking.len()
        ),
        None => println!("the target does not co-occur with the hot item"),
    }

    // The attacker's optimal budget split (Eq 3).
    let budget = 15;
    if let Some((hot_clicks, target_clicks)) = i2i::optimal_strategy(budget) {
        println!(
            "optimal split of a {budget}-click budget: {hot_clicks} on the hot item, {target_clicks} on the target"
        );
    }

    // The Section IV rough screening (the paper's exploratory pass: "more
    // than 1.4M users (>= 7%) ... more than 600,000 items (>= 15%)", and
    // the clicker-share contrast 1.98% vs 0.49%).
    let s4 = section4_analysis(&dataset, t_hot, 12);
    println!("\n=== Section IV rough screening ===");
    println!(
        "flagged {:.1}% of users, {:.1}% of items (deliberately loose)",
        s4.user_fraction * 100.0,
        s4.item_fraction * 100.0
    );
    println!(
        "suspicious-clicker share: {:.2}% on targets vs {:.2}% on click-matched normal items",
        s4.target_clicker_share * 100.0,
        s4.normal_clicker_share * 100.0
    );
}

fn print_records(rows: &[ClickRecordRow]) {
    println!("ID  Click  Total_click  Hot");
    for r in rows {
        println!(
            "{:>2}  {:>5}  {:>11}  {:>3}",
            r.seq, r.click, r.total_click, r.hot
        );
    }
}
