//! Reproduces Fig 8: RICD vs LPA, CN, Louvain, COPYCATCH, FRAUDAR and the
//! naive algorithm (all with the UI screening attached), on quality (8a)
//! and elapsed time (8b).
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use fake_click_detection::eval::figures::fig8;
use fake_click_detection::prelude::*;
use std::time::Duration;

fn main() {
    let dataset = generate(&DatasetConfig::default(), &AttackConfig::evaluation())
        .expect("default config is valid");
    println!(
        "dataset: {} users / {} items / {} edges; {} planted groups",
        dataset.graph.num_users(),
        dataset.graph.num_items(),
        dataset.graph.num_edges(),
        dataset.truth.groups.len()
    );

    let cfg = MethodConfig {
        copycatch_budget: Duration::from_secs(10),
        ..MethodConfig::default()
    };
    let outcomes = fig8(&dataset.graph, &dataset.truth, &cfg);

    println!("\n=== Fig 8a: precision / recall / F1 (all methods +UI) ===");
    println!("{}", report::format_quality(&outcomes));

    println!("=== Fig 8b: elapsed time (COPYCATCH/FRAUDAR excluded, as in the paper) ===");
    let timed: Vec<_> = outcomes
        .iter()
        .filter(|o| Method::fig8b_lineup().contains(&o.method))
        .cloned()
        .collect();
    println!("{}", report::format_timing(&timed));
}
