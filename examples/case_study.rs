//! Reproduces the Section VII case study (Fig 10): a marketing-campaign
//! attack simulated day by day, a daily RICD job over the cumulative click
//! snapshots, and the traffic timeline after the detected fake clicks are
//! cleaned.
//!
//! ```sh
//! cargo run --release --example case_study
//! ```

use fake_click_detection::eval::figures::fig10;
use fake_click_detection::prelude::*;

fn main() {
    // The case-study group: 28 accounts, 2 ridden hot items, 11 targets.
    let campaign = CampaignConfig::default();
    let cfg = MethodConfig::default();

    let report = fig10(&campaign, &cfg, 0.5).expect("campaign simulates");

    match report.detection_day {
        Some(day) => println!(
            "RICD detected the attack group on day {day} (worker recall {:.0}%)",
            report.worker_recall_at_detection * 100.0
        ),
        None => println!("RICD did not catch the group within the window"),
    }

    println!("\n=== Fig 10: historical traffic of the target items ===");
    println!("day   normal   fake  |  traffic");
    let max = report
        .cleaned
        .iter()
        .map(|d| d.normal_clicks + d.fake_clicks)
        .max()
        .unwrap_or(1)
        .max(1);
    for d in &report.cleaned {
        let n = (d.normal_clicks * 40 / max) as usize;
        let f = (d.fake_clicks * 40 / max) as usize;
        let mut marks = String::new();
        if Some(d.day) == report.detection_day {
            marks.push_str("  <- detected & cleaned");
        }
        if d.day == campaign.campaign_start_day {
            marks.push_str("  <- campaign starts");
        }
        if d.day == campaign.delist_day {
            marks.push_str("  <- sellers delist");
        }
        println!(
            "{:>3}  {:>7}  {:>5}  |  {}{}{marks}",
            d.day,
            d.normal_clicks,
            d.fake_clicks,
            "n".repeat(n),
            "F".repeat(f),
        );
    }
}
