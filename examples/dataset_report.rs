//! Reproduces the paper's dataset characterization: Table I (scale),
//! Table II (statistics), Fig 2 (click distributions), and the Section IV
//! threshold derivations (T_hot by the Pareto rule, T_click by Eq 4).
//!
//! ```sh
//! cargo run --release --example dataset_report
//! ```

use fake_click_detection::eval::figures::dataset_report;
use fake_click_detection::prelude::*;

fn main() {
    let dataset = generate(&DatasetConfig::default(), &AttackConfig::none())
        .expect("default config is valid");
    let r = dataset_report(&dataset.graph);

    println!("=== Table I: data scale (paper at 1000x: 20M/4M/90M/200M) ===");
    println!("users        {}", r.scale.users);
    println!("items        {}", r.scale.items);
    println!("edges        {}", r.scale.edges);
    println!("total_clicks {}", r.scale.total_clicks);

    println!("\n=== Table II: data statistics (paper: user 11.35/4.32/33.34, item 54.94/20.49/992.78) ===");
    println!(
        "user: avg_clk={:.2} avg_cnt={:.2} stdev={:.2}",
        r.user_stats.avg_clk, r.user_stats.avg_cnt, r.user_stats.stdev
    );
    println!(
        "item: avg_clk={:.2} avg_cnt={:.2} stdev={:.2}",
        r.item_stats.avg_clk, r.item_stats.avg_cnt, r.item_stats.stdev
    );

    println!("\n=== Section IV thresholds ===");
    println!(
        "top-20% items hold {:.1}% of clicks (Pareto principle)",
        r.pareto_top20_share * 100.0
    );
    println!("T_hot (80% rule)  = {}  (paper: 1,320)", r.t_hot_pareto);
    println!("T_click (Eq 4)    = {}  (paper: 12)", r.t_click_derived);

    println!("\n=== Fig 2a: distribution of items' clicks ===");
    print_distribution(
        &r.item_distribution.bin_lower,
        &r.item_distribution.count,
        "items",
    );
    println!("\n=== Fig 2b: distribution of users' clicks ===");
    print_distribution(
        &r.user_distribution.bin_lower,
        &r.user_distribution.count,
        "users",
    );
}

fn print_distribution(bins: &[u64], counts: &[u64], what: &str) {
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    for (lo, &n) in bins.iter().zip(counts) {
        let bar = "#".repeat((n * 50 / max) as usize);
        println!("{lo:>8}+ clicks  {n:>7} {what}  {bar}");
    }
}
