//! Quickstart: generate a synthetic e-commerce click dataset with planted
//! "Ride Item's Coattails" attacks, run the RICD detector, and score it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fake_click_detection::prelude::*;

fn main() {
    // 1. A Taobao-like click dataset (small scale: 2k users, 400 items)
    //    with 4 planted crowd-worker attack groups.
    let dataset =
        generate(&DatasetConfig::small(), &AttackConfig::small()).expect("configs are valid");
    println!(
        "dataset: {} users, {} items, {} click records, {} total clicks",
        dataset.graph.num_users(),
        dataset.graph.num_items(),
        dataset.graph.num_edges(),
        dataset.graph.total_clicks()
    );
    println!(
        "planted: {} attack groups, {} workers, {} target items",
        dataset.truth.groups.len(),
        dataset.truth.abnormal_users().len(),
        dataset.truth.abnormal_items().len()
    );

    // 2. Run RICD with the paper's default parameters
    //    (k1 = k2 = 10, alpha = 1.0, T_hot = 1000, T_click = 12).
    let pipeline = RicdPipeline::new(RicdParams::default());
    let result = pipeline.run(&dataset.graph);

    println!("\ndetected {} suspicious groups:", result.groups.len());
    for (i, group) in result.groups.iter().enumerate() {
        println!(
            "  group {}: {} workers, {} target items, riding {} hot item(s)",
            i + 1,
            group.users.len(),
            group.items.len(),
            group.ridden_hot_items.len()
        );
    }

    // 3. Score against the planted ground truth (paper Eq 5-6).
    let eval = evaluate(&result, &dataset.truth);
    println!(
        "\nprecision = {:.3}   recall = {:.3}   F1 = {:.3}",
        eval.precision, eval.recall, eval.f1
    );

    // 4. The analyst-facing ranked output (top 5 users by risk score).
    println!("\ntop suspicious users by risk score:");
    for (u, risk) in result.ranked_users.iter().take(5) {
        println!("  {u}  risk = {risk}");
    }
}
