//! The full causal loop the paper describes, measured on the actual
//! recommender: the attack inflates the targets' I2I scores and buys
//! exposure in real users' recommendation lists; RICD detects the group;
//! cleaning the fake clicks takes the exposure away again — quantifying the
//! Section VII claim that the framework "protects … users from incorrect
//! recommendations".
//!
//! ```sh
//! cargo run --release --example recommendation_impact
//! ```

use fake_click_detection::prelude::*;
use fake_click_detection::recommender::{attack_impact, exposed_users, I2iIndex};
use ricd_engine::WorkerPool;
use ricd_graph::GraphBuilder;

fn main() {
    let pool = WorkerPool::default_for_host();
    let top_n = 10;

    // The same organic world, with and without the attacks.
    let clean = generate(&DatasetConfig::small(), &AttackConfig::none()).expect("valid");
    let attacked = generate(&DatasetConfig::small(), &AttackConfig::small()).expect("valid");
    let targets = attacked.truth.abnormal_items();

    // 1. What the attack bought.
    let impact = attack_impact(&clean.graph, &attacked.graph, &targets, top_n, &pool);
    println!("=== What the attack bought (top-{top_n} recommendation lists) ===");
    println!(
        "users exposed to targets before the attack: {}",
        impact.exposed_before
    );
    println!(
        "users exposed to targets after the attack:  {}",
        impact.exposed_after
    );

    // 2. RICD detects and the platform cleans the fake clicks.
    let result = RicdPipeline::new(RicdParams::default()).run(&attacked.graph);
    let caught_users = result.suspicious_users();
    let eval = evaluate(&result, &attacked.truth);
    println!("\n=== Detection ===");
    println!(
        "RICD caught {} groups (precision {:.2}, recall {:.2})",
        result.groups.len(),
        eval.precision,
        eval.recall
    );

    // Cleaning = dropping every click by a caught account.
    let mut b = GraphBuilder::new();
    b.reserve_users(attacked.graph.num_users());
    b.reserve_items(attacked.graph.num_items());
    for (u, v, c) in attacked.graph.edges() {
        if caught_users.binary_search(&u).is_err() {
            b.add_click(u, v, c);
        }
    }
    let cleaned = b.build();

    // 3. What cleaning restored.
    let idx = I2iIndex::build(&cleaned, top_n * 4, &pool);
    let still_exposed = exposed_users(&cleaned, &idx, &targets, top_n, &pool).len();
    println!("\n=== After cleaning the caught accounts' clicks ===");
    println!("users still exposed to targets: {still_exposed}");
    println!(
        "users protected: {} ({:.0}% of the attack's gain undone)",
        impact.exposed_after.saturating_sub(still_exposed),
        if impact.exposed_after > impact.exposed_before {
            100.0 * (impact.exposed_after - still_exposed) as f64
                / (impact.exposed_after - impact.exposed_before) as f64
        } else {
            100.0
        }
    );
}
