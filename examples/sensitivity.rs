//! Reproduces Fig 9: RICD's sensitivity to k1, k2, alpha, T_click and
//! T_hot, swept one at a time around the paper's defaults.
//!
//! The dataset mixes three attack waves whose scale, click intensity and
//! coverage straddle the swept ranges (see
//! `AttackConfig::sensitivity_mix`), plus oversized bargain-hunter rings
//! whose admission depends on alpha/k — so both precision and recall move.
//!
//! ```sh
//! cargo run --release --example sensitivity
//! ```

use fake_click_detection::eval::figures::fig9;
use fake_click_detection::prelude::*;

fn main() {
    let dataset_cfg = DatasetConfig {
        hunter_users: (8, 12),
        hunter_items: (8, 12),
        ..DatasetConfig::default()
    };
    let dataset = generate_with_attacks(&dataset_cfg, &AttackConfig::sensitivity_mix())
        .expect("config is valid");
    println!(
        "dataset: {} groups across three waves, {} known abnormal nodes",
        dataset.truth.groups.len(),
        dataset.truth.num_abnormal()
    );

    let cfg = MethodConfig::default();
    let sweep = fig9(&dataset.graph, &dataset.truth, &cfg);
    println!("=== Fig 9: parameter sensitivity of RICD ===");
    println!("{}", report::format_sensitivity(&sweep));
    println!("(paper shape: monotone trade-offs everywhere except T_hot's interior optimum;");
    println!(" k1 and k2 move precision in opposite directions)");
}
