//! The incremental-detection extension (the paper's future work, Section
//! VIII): run a StreamingDetector over the Fig 10 campaign's daily click
//! batches and watch it catch the attack group *online*, then verify the
//! incremental state against a full re-run.
//!
//! ```sh
//! cargo run --release --example streaming_detection
//! ```

use fake_click_detection::core::incremental::StreamingDetector;
use fake_click_detection::core::pipeline::RicdPipeline;
use fake_click_detection::prelude::*;

fn main() {
    let campaign = CampaignConfig::default();
    let timeline = simulate_campaign(&campaign).expect("campaign simulates");
    println!(
        "campaign: {} days, 1 planted group ({} workers x {} targets)",
        campaign.num_days,
        timeline.truth.groups[0].workers.len(),
        timeline.truth.groups[0].targets.len()
    );

    let mut detector = StreamingDetector::new(RicdPipeline::new(RicdParams::default()));

    // Day 0: the pre-campaign organic background.
    let background: Vec<_> = timeline.background.graph.edges().collect();
    detector.ingest(&background);

    let workers = timeline.truth.abnormal_users();
    let mut caught_day: Option<usize> = None;
    for (day_idx, batch) in timeline.per_day_records.iter().enumerate() {
        let day = day_idx + 1;
        let stats = detector.ingest(batch);
        let found = detector
            .groups()
            .iter()
            .flat_map(|g| g.users.iter())
            .filter(|u| workers.binary_search(u).is_ok())
            .count();
        println!(
            "day {day:>2}: +{:>5} records, frontier {:>3} items, groups {:>2}, workers caught {found}/{}",
            stats.records,
            stats.frontier_items,
            detector.groups().len(),
            workers.len()
        );
        if found == workers.len() && caught_day.is_none() {
            caught_day = Some(day);
            println!("        ^ full group caught online on day {day}");
        }
    }

    // Cross-check: the incremental state matches a from-scratch run.
    let incremental_users: Vec<_> = detector.result().suspicious_users();
    let full = detector.full_resync();
    assert_eq!(
        incremental_users,
        full.suspicious_users(),
        "incremental == full detection on this stream"
    );
    println!("\nincremental state verified against a full re-run ✓");
}
