#![warn(missing_docs)]

//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset this workspace uses: [`Bytes`] (a cheaply
//! cloneable, sliceable view of an immutable buffer), [`BytesMut`] (a
//! growable builder), and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the binary click-table format needs. Backed by
//! `Arc<Vec<u8>>` + range instead of upstream's manual vtables — same
//! semantics, less unsafe.

use std::ops::{Deref, Index};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer with zero-copy slicing.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice (copied; the shim has no true static path).
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-view.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        Self { data: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for BytesMut {
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.data[i]
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor.
    ///
    /// # Panics
    /// Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes into `dst` and advances.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u64_le(0xDEAD_BEEF_CAFE_F00D);
        buf.put_u32_le(42);
        let mut b = buf.freeze();
        let mut hdr = [0u8; 3];
        b.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(b.get_u64_le(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(b.get_u32_le(), 42);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slicing_is_a_view() {
        let b = Bytes::from(&b"0123456789"[..]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], b"2345");
        assert_eq!(s.len(), 4);
        let ss = s.slice(1..3);
        assert_eq!(&ss[..], b"34");
        assert_eq!(b.len(), 10, "parent untouched");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(&b"ab"[..]);
        b.get_u32_le();
    }

    #[test]
    fn bytes_mut_indexing() {
        let mut b = BytesMut::from(&b"xyz"[..]);
        b[0] = b'X';
        assert_eq!(b[0], b'X');
        assert_eq!(b.freeze(), Bytes::from(&b"Xyz"[..]));
    }
}
