#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and method surface the `ricd-bench` harness uses
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! with plain wall-clock timing: each benchmark runs `sample_size`
//! iterations after one warm-up and reports min/mean. No statistical
//! analysis, outlier rejection, or HTML reports — the point is that
//! `cargo bench` compiles and produces usable coarse numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Applies CLI configuration. The shim ignores `cargo bench` arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.default_sample_size;
        run_one("", &name.into(), samples, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times a closure under the given benchmark id.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().label,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Times a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().label,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group. Reporting already happened per-benchmark.
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group, optionally parameterised.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so plain strings work as ids.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; `iter` is the timed region.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn run_one(group: &str, label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    // Warm-up pass, untimed.
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut warm);

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        if b.iterations > 0 {
            let per = b.elapsed / b.iterations as u32;
            min = min.min(per);
            total += b.elapsed;
            iters += b.iterations;
        }
    }
    if iters > 0 {
        let mean = total / iters as u32;
        println!("bench {full:<50} mean {mean:>12.3?}  min {min:>12.3?}  ({iters} iters)");
    } else {
        println!("bench {full:<50} (no timed iterations)");
    }
}

/// Declares a benchmark group: `criterion_group!(benches, f1, f2)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_sample() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| count += 1));
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        let mut g = c.benchmark_group("t");
        g.sample_size(1);
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| seen = x * x)
        });
        g.finish();
        assert_eq!(seen, 49);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
