#![warn(missing_docs)]

//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest its tests use: the [`Strategy`] trait
//! with range/tuple/collection/`prop_map` combinators, the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`]. Cases are generated from a seed derived
//! deterministically from the test name, and every failure message carries
//! the per-case seed so a run can be reproduced by eye.
//!
//! Deliberately missing versus upstream: shrinking (failures report the
//! raw case), persistence files, and the full strategy combinator zoo.

use rand::prelude::*;

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration. Only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// `prop_assert!`-style failure.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// True for [`TestCaseError::Reject`].
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "rejected by prop_assume!"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// The [`any`] strategy.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// A sampled collection-size specification.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi_exclusive)
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi_exclusive: r.end.max(r.start + 1),
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet`s with `size` distinct elements drawn from `element`
    /// (best effort: gives up growing after bounded rejection retries, so
    /// a small element domain yields a smaller set rather than a hang).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0;
            while out.len() < n && tries < 20 * n + 20 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option`s that are `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The glob import test modules use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Builds the per-case RNG. Used by the [`proptest!`] expansion so test
/// crates do not need their own `rand` dependency.
pub fn rng_from_seed(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// FNV-1a over the test path — the deterministic base seed per test.
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drives one proptest-style test: draws cases, skips rejections, panics
/// with the case seed on failure. Used by the [`proptest!`] expansion.
pub fn run_cases(
    test_name: &str,
    config: ProptestConfig,
    mut case: impl FnMut(u64) -> Result<(), TestCaseError>,
) {
    let mut seeder = TestRng::seed_from_u64(seed_for_test(test_name));
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(100);
    while accepted < config.cases {
        assert!(
            attempts < max_attempts,
            "{test_name}: gave up after {attempts} attempts with only {accepted}/{} accepted cases \
             (prop_assume! rejects too much?)",
            config.cases
        );
        attempts += 1;
        let case_seed = seeder.next_u64();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(case_seed)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject)) => continue,
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("{test_name}: case failed (case seed {case_seed:#018x}): {msg}")
            }
            Err(payload) => {
                eprintln!("{test_name}: case panicked (case seed {case_seed:#018x})");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Defines `#[test]` functions over generated inputs.
///
/// Mirrors upstream's surface for the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategies = ($($strat,)+);
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                $cfg,
                |case_seed| {
                    let mut rng = $crate::rng_from_seed(case_seed);
                    let ($($pat,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let s = collection::vec((0u32..40, 0.0f64..1.0), 0..50);
        let mut r1 = TestRng::seed_from_u64(9);
        let mut r2 = TestRng::seed_from_u64(9);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn btree_set_respects_size_where_possible() {
        let s = collection::btree_set(0u32..1000, 5..6);
        let mut rng = TestRng::seed_from_u64(1);
        assert_eq!(s.generate(&mut rng).len(), 5);
        // Domain smaller than requested size: bounded retries, no hang.
        let tiny = collection::btree_set(0u32..3, 10..11);
        assert!(tiny.generate(&mut rng).len() <= 3);
    }

    #[test]
    fn run_cases_counts_accepted_only() {
        let mut accepted = 0;
        run_cases("t", ProptestConfig::with_cases(10), |seed| {
            if seed % 2 == 0 {
                return Err(TestCaseError::Reject);
            }
            accepted += 1;
            Ok(())
        });
        assert_eq!(accepted, 10);
    }

    #[test]
    #[should_panic(expected = "case seed")]
    fn failures_carry_the_seed() {
        run_cases("t", ProptestConfig::with_cases(5), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface end to end: tuples, prop_map, assume, asserts.
        #[test]
        fn macro_round_trip((a, b) in (0u32..50, 0u32..50).prop_map(|(x, y)| (x, x + y)),
                            flag in any::<bool>()) {
            prop_assume!(a % 7 != 3);
            prop_assert!(b >= a, "b {b} >= a {a}");
            prop_assert_eq!(a.min(b), a);
            let _ = flag;
        }
    }
}
