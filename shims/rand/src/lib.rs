#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: [`RngCore`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. The generator is
//! xoshiro256** seeded via SplitMix64 — deterministic across platforms,
//! which is all the callers (seeded synthetic-data generation and tests)
//! rely on. Stream values differ from upstream `rand`; no caller depends
//! on upstream's exact streams.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from the generator's "standard" distribution
/// (`rng.gen::<T>()`): full range for integers, `[0, 1)` for floats,
/// fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-32
                // for every span this workspace uses.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64) + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u64).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements chosen without replacement (fewer if
        /// the slice is shorter), in selection order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 7).copied().collect();
        assert_eq!(picked.len(), 7);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 7, "no repeats");
        let over: Vec<u32> = v.choose_multiple(&mut rng, 50).copied().collect();
        assert_eq!(over.len(), 20);
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
