#![warn(missing_docs)]

//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal data-model replacement: types serialize into a
//! JSON-shaped [`Value`] tree and deserialize back out of one. The
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! sibling `serde_derive` proc-macro crate) cover the shapes this
//! workspace uses: structs with named fields, tuple structs, and enums
//! with unit or newtype variants. `serde_json` formats and parses the
//! [`Value`] tree.
//!
//! This is intentionally *not* the upstream visitor architecture — with a
//! single wire format (JSON) the intermediate tree is simpler and plenty
//! fast for experiment artifacts.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A JSON-shaped document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or small integer.
    I64(i64),
    /// Large non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::U64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Object member by key ([`Value::Null`] view for non-objects or
    /// missing keys comes from the `Index` impl).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

/// Error produced while mapping a [`Value`] back into a typed structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, rejecting shape mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Extracts and deserializes one object field — the helper the derive
/// macro expands to for named-field structs.
pub fn from_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    match v.get(key) {
        Some(f) => T::from_value(f).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => format_plain(&other),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

/// Plain text for non-string map keys (numbers, mostly).
fn format_plain(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::F64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {v:?}")))?;
                let want = [$($idx),+].len();
                if a.len() != want {
                    return Err(Error::custom(format!(
                        "expected {want}-tuple, got {} elements",
                        a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".into(), Value::U64(self.as_secs())),
            ("nanos".into(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs: u64 = from_field(v, "secs")?;
        let nanos: u32 = from_field(v, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-9i64).to_value()), Ok(-9));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".into()));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&7u32.to_value()), Ok(Some(7)));
    }

    #[test]
    fn numeric_coercions() {
        // An integral float target accepts integer JSON and vice versa the
        // unsigned/signed split stays lossless.
        assert_eq!(f64::from_value(&Value::I64(3)), Ok(3.0));
        assert_eq!(f64::from_value(&Value::U64(3)), Ok(3.0));
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()), Ok(v));
        let d = Duration::new(3, 500);
        assert_eq!(Duration::from_value(&d.to_value()), Ok(d));
    }

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![(
            "xs".into(),
            Value::Array(vec![Value::U64(1), Value::U64(2)]),
        )]);
        assert_eq!(v["xs"][1], Value::U64(2));
        assert_eq!(v["missing"], Value::Null);
        assert!(v["xs"].as_array().is_some());
    }

    #[test]
    fn helpful_field_errors() {
        let v = Value::Object(vec![("a".into(), Value::Str("x".into()))]);
        let err = from_field::<u32>(&v, "a").unwrap_err();
        assert!(err.to_string().contains("field `a`"), "{err}");
        let err = from_field::<u32>(&v, "b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"), "{err}");
    }
}
