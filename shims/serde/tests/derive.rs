//! Round-trip tests for the hand-rolled derive macros, covering every
//! supported item shape through the public `serde` surface.

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Named {
    a: u32,
    b: String,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Wrapper(u64);

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Pair(u32, f64);

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Marker;

#[derive(Debug, PartialEq, Serialize, Deserialize)]
enum Status {
    Idle,
    Running(u32),
    Failed { code: i64, message: String },
}

fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(x: T) {
    assert_eq!(T::from_value(&x.to_value()), Ok(x));
}

#[test]
fn structs_round_trip() {
    round_trip(Named {
        a: 7,
        b: "hi".into(),
    });
    round_trip(Wrapper(9));
    round_trip(Pair(1, 2.5));
    round_trip(Marker);
}

#[test]
fn enum_variants_round_trip() {
    round_trip(Status::Idle);
    round_trip(Status::Running(42));
    round_trip(Status::Failed {
        code: -3,
        message: "worker panicked".into(),
    });
}

#[test]
fn struct_variant_wire_shape() {
    let v = Status::Failed {
        code: 1,
        message: "m".into(),
    }
    .to_value();
    // Externally tagged: {"Failed": {"code": 1, "message": "m"}}.
    assert_eq!(v["Failed"]["code"], Value::I64(1));
    assert_eq!(v["Failed"]["message"], Value::Str("m".into()));
}

#[test]
fn unknown_variant_is_an_error() {
    let bogus = Value::Object(vec![("Exploded".into(), Value::Null)]);
    assert!(Status::from_value(&bogus).is_err());
    assert!(Status::from_value(&Value::Str("Nope".into())).is_err());
}
