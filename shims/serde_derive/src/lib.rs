//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! workspace's vendored `serde` shim (a JSON-shaped `Value` data model).
//! Supported shapes — the ones this workspace actually uses:
//!
//! * structs with named fields,
//! * tuple structs (a 1-field newtype serializes as its inner value,
//!   wider tuples as arrays),
//! * unit structs,
//! * enums whose variants are unit, single-field newtypes, or have named
//!   fields (unit → `"Variant"`, newtype → `{"Variant": value}`,
//!   struct → `{"Variant": {fields…}}`).
//!
//! Generics and `#[serde(...)]` attributes are not supported and fail
//! loudly at compile time. The parser walks the token tree by hand — no
//! `syn`/`quote`, because the build environment cannot download them.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Self {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attribute tokens.
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.next();
                }
                other => panic!("expected attribute brackets after `#`, found {other:?}"),
            }
        }
    }

    /// Skips `pub` / `pub(...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected {what}, found {other:?}"),
        }
    }

    fn expect_punct(&mut self, ch: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ch => {}
            other => panic!("expected `{ch}`, found {other:?}"),
        }
    }

    /// Consumes type tokens until a top-level `,` (angle-bracket aware).
    /// Leaves the cursor on the comma (or at the end).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => match p.as_char() {
                    ',' if angle_depth == 0 => return,
                    '<' => {
                        angle_depth += 1;
                        self.next();
                    }
                    '>' => {
                        angle_depth -= 1;
                        self.next();
                    }
                    _ => {
                        self.next();
                    }
                },
                _ => {
                    self.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream, derive_name: &str) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("derive({derive_name}) shim does not support generic type `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("derive({derive_name}) applied to unsupported item kind `{other}`"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.at_end() {
            return fields;
        }
        fields.push(c.expect_ident("field name"));
        c.expect_punct(':');
        c.skip_type();
        if c.at_end() {
            return fields;
        }
        c.expect_punct(',');
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut arity = 0;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.at_end() {
            return arity;
        }
        c.skip_type();
        arity += 1;
        if c.at_end() {
            return arity;
        }
        c.expect_punct(',');
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            return variants;
        }
        let name = c.expect_ident("variant name");
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                assert!(
                    arity == 1,
                    "derive shim supports only single-field tuple variants, `{name}` has {arity}"
                );
                c.next();
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if c.at_end() {
            return variants;
        }
        c.expect_punct(',');
    }
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input, "Serialize");
    let mut out = String::new();
    let (type_name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let mut b =
                String::from("::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([\n");
            for f in fields {
                let _ = writeln!(
                    b,
                    "    (::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            b.push_str("])))");
            (name, b)
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let mut b =
                String::from("::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([\n");
            for i in 0..*arity {
                let _ = writeln!(b, "    ::serde::Serialize::to_value(&self.{i}),");
            }
            b.push_str("])))");
            (name, b)
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut b = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Newtype => {
                        let _ = writeln!(
                            b,
                            "    Self::{vn}(inner) => ::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([(::std::string::String::from({vn:?}), ::serde::Serialize::to_value(inner))]))),"
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let pat = fields.join(", ");
                        let mut inner = String::from(
                            "::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([",
                        );
                        for f in fields {
                            let _ = write!(
                                inner,
                                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f})), "
                            );
                        }
                        inner.push_str("])))");
                        let _ = writeln!(
                            b,
                            "    Self::{vn} {{ {pat} }} => ::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([(::std::string::String::from({vn:?}), {inner})]))),"
                        );
                    }
                    VariantKind::Unit => {
                        let _ = writeln!(
                            b,
                            "    Self::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        );
                    }
                }
            }
            b.push('}');
            (name, b)
        }
    };
    let _ = write!(
        out,
        "#[automatically_derived]\nimpl ::serde::Serialize for {type_name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    );
    out.parse()
        .expect("derive(Serialize) generated invalid Rust")
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input, "Deserialize");
    let mut out = String::new();
    let (type_name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let mut b = String::from("::std::result::Result::Ok(Self {\n");
            for f in fields {
                let _ = writeln!(b, "    {f}: ::serde::from_field(v, {f:?})?,");
            }
            b.push_str("})");
            (name, b)
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
        ),
        Item::TupleStruct { name, arity } => {
            let mut b = format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::custom(format!(\"expected array for `{name}`, got {{v:?}}\")))?;\n"
            );
            let _ = writeln!(
                b,
                "        if a.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::custom(format!(\"expected {arity} elements for `{name}`, got {{}}\", a.len()))); }}"
            );
            b.push_str("        ::std::result::Result::Ok(Self(");
            for i in 0..*arity {
                let _ = write!(b, "::serde::Deserialize::from_value(&a[{i}])?, ");
            }
            b.push_str("))");
            (name, b)
        }
        Item::UnitStruct { name } => (
            name,
            "let _ = v; ::std::result::Result::Ok(Self)".to_string(),
        ),
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let tagged: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            let mut b = String::from("match v {\n");
            if !unit.is_empty() {
                b.push_str("    ::serde::Value::Str(s) => match s.as_str() {\n");
                for v in &unit {
                    let vn = &v.name;
                    let _ = writeln!(
                        b,
                        "        {vn:?} => ::std::result::Result::Ok(Self::{vn}),"
                    );
                }
                let _ = writeln!(
                    b,
                    "        other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of `{name}`\"))),"
                );
                b.push_str("    },\n");
            }
            if !tagged.is_empty() {
                b.push_str(
                    "    ::serde::Value::Object(entries) if entries.len() == 1 => {\n        let (k, inner) = &entries[0];\n        match k.as_str() {\n",
                );
                for v in &tagged {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Newtype => {
                            let _ = writeln!(
                                b,
                                "            {vn:?} => ::std::result::Result::Ok(Self::{vn}(::serde::Deserialize::from_value(inner)?)),"
                            );
                        }
                        VariantKind::Struct(fields) => {
                            let mut init = String::new();
                            for f in fields {
                                let _ = write!(init, "{f}: ::serde::from_field(inner, {f:?})?, ");
                            }
                            let _ = writeln!(
                                b,
                                "            {vn:?} => ::std::result::Result::Ok(Self::{vn} {{ {init} }}),"
                            );
                        }
                        VariantKind::Unit => unreachable!(),
                    }
                }
                let _ = writeln!(
                    b,
                    "            other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of `{name}`\"))),"
                );
                b.push_str("        }\n    },\n");
            }
            let _ = writeln!(
                b,
                "    other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unexpected value for enum `{name}`: {{other:?}}\"))),"
            );
            b.push('}');
            (name, b)
        }
    };
    let _ = write!(
        out,
        "#[automatically_derived]\nimpl ::serde::Deserialize for {type_name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
    );
    out.parse()
        .expect("derive(Deserialize) generated invalid Rust")
}
