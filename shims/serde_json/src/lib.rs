#![warn(missing_docs)]

//! Offline stand-in for `serde_json`.
//!
//! Formats the vendored `serde` shim's [`Value`] tree as JSON (compact and
//! pretty) and parses JSON text back into it. Numbers parse to `I64`/`U64`
//! when integral and in range, `F64` otherwise; floats print via Rust's
//! shortest-round-trip formatting, so typed round trips are exact.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// Always succeeds for the shim data model; the `Result` mirrors the
/// upstream signature so call sites stay source-compatible.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                // JSON has no NaN/Infinity; match upstream's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            write_value,
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal, expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| self.err(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // unpaired surrogates map to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.err(format!("bad escape `\\{:?}`", other)));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            // Match upstream: non-negative integers become U64, negative I64.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| self.err(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b\\c\n".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::U64(1), Value::I64(-2), Value::F64(0.5)]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_parses_back() {
        let v = Value::Object(vec![(
            "groups".into(),
            Value::Array(vec![Value::Object(vec![("n".into(), Value::U64(3))])]),
        )]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n') && s.contains("  "), "{s}");
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
        assert!(v["groups"].as_array().is_some());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 12345.6789, f64::MAX] {
            let s = to_string(&x).unwrap();
            let y: f64 = from_str(&s).unwrap();
            assert_eq!(x, y, "{s}");
        }
    }

    #[test]
    fn integral_floats_survive_via_integer_coercion() {
        // 1.0f64 prints as "1", parses as I64, coerces back to f64.
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1");
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.0);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Value = from_str(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v["a"][1], Value::U64(2));
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v, Value::Str("Aé".into()));
        let control = to_string(&Value::Str("\u{1}".into())).unwrap();
        assert_eq!(control, "\"\\u0001\"");
        assert_eq!(
            from_str::<Value>(&control).unwrap(),
            Value::Str("\u{1}".into())
        );
    }
}
