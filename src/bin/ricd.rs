//! `ricd` — command-line front end for the fake-click-detection library.
//!
//! ```text
//! ricd generate --output clicks.tsv --truth truth.json [--scale default]
//! ricd stats    --input clicks.tsv
//! ricd detect   --input clicks.tsv [--k1 10 --k2 10 --alpha 1.0 ...]
//! ricd eval     --input clicks.tsv --truth truth.json [--method RICD]
//! ricd campaign [--days 13]
//! ```
//!
//! Click tables are TSV (`user \t item \t clicks`); ground truth and
//! detection reports are JSON.

use fake_click_detection::core::detect::Seeds;
use fake_click_detection::eval::figures;
use fake_click_detection::graph::io as graph_io;
use fake_click_detection::prelude::*;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ricd - Ride Item's Coattails attack detection (ICDE 2021 reproduction)

USAGE:
    ricd generate --output <clicks.tsv> [--truth <truth.json>]
                  [--scale tiny|small|default] [--groups <N>] [--seed <N>]
    ricd stats    --input <clicks.tsv>
    ricd detect   --input <clicks.tsv> [--output <report.json>]
                  [--k1 <N>] [--k2 <N>] [--alpha <F>]
                  [--t-hot <N>] [--t-click <N>]
                  [--seed-user <id>]... [--seed-item <id>]...
    ricd eval     --input <clicks.tsv> --truth <truth.json> [--method <NAME>]
    ricd campaign [--days <N>]

Click tables are TSV lines `user<TAB>item<TAB>clicks`.
";

/// Minimal `--key value` parser; flags may repeat.
struct Flags<'a>(&'a [String]);

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.0
            .windows(2)
            .find(|w| w[0] == key)
            .map(|w| w[1].as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&'a str> {
        self.0
            .windows(2)
            .filter(|w| w[0] == key)
            .map(|w| w[1].as_str())
            .collect()
    }

    fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.get(key)
            .map(|v| v.parse().map_err(|e| format!("bad {key}: {e}")))
            .transpose()
    }

    fn require(&self, key: &str) -> Result<&'a str, String> {
        self.get(key).ok_or_else(|| format!("missing {key}"))
    }
}

fn load_graph(path: &str) -> Result<fake_click_detection::graph::BipartiteGraph, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    graph_io::read_tsv(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn ricd_params(flags: &Flags) -> Result<RicdParams, String> {
    let mut p = RicdParams::default();
    if let Some(v) = flags.parse("--k1")? {
        p.k1 = v;
    }
    if let Some(v) = flags.parse("--k2")? {
        p.k2 = v;
    }
    if let Some(v) = flags.parse("--alpha")? {
        p.alpha = v;
    }
    if let Some(v) = flags.parse("--t-hot")? {
        p.t_hot = v;
    }
    if let Some(v) = flags.parse("--t-click")? {
        p.t_click = v;
    }
    p.validate()?;
    Ok(p)
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let output = flags.require("--output")?;
    let mut dataset_cfg = match flags.get("--scale") {
        None | Some("default") => DatasetConfig::default(),
        Some("small") => DatasetConfig::small(),
        Some("tiny") => DatasetConfig::tiny(),
        Some(other) => return Err(format!("unknown scale `{other}`")),
    };
    if let Some(seed) = flags.parse("--seed")? {
        dataset_cfg.seed = seed;
    }
    let mut attack = AttackConfig::evaluation();
    if let Some(groups) = flags.parse("--groups")? {
        attack.num_groups = groups;
    }
    let ds = generate(&dataset_cfg, &attack)?;

    let file = File::create(output).map_err(|e| format!("{output}: {e}"))?;
    graph_io::write_tsv(&ds.graph, BufWriter::new(file)).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {}: {} users, {} items, {} records, {} clicks ({} planted groups)",
        output,
        ds.graph.num_users(),
        ds.graph.num_items(),
        ds.graph.num_edges(),
        ds.graph.total_clicks(),
        ds.truth.groups.len()
    );

    if let Some(truth_path) = flags.get("--truth") {
        let json = serde_json::to_string_pretty(&ds.truth).map_err(|e| e.to_string())?;
        let mut f = File::create(truth_path).map_err(|e| format!("{truth_path}: {e}"))?;
        f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
        eprintln!("wrote {truth_path}");
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let g = load_graph(flags.require("--input")?)?;
    let r = figures::dataset_report(&g);
    println!("users         {}", r.scale.users);
    println!("items         {}", r.scale.items);
    println!("edges         {}", r.scale.edges);
    println!("total clicks  {}", r.scale.total_clicks);
    println!(
        "user stats    avg_clk={:.2} avg_cnt={:.2} stdev={:.2}",
        r.user_stats.avg_clk, r.user_stats.avg_cnt, r.user_stats.stdev
    );
    println!(
        "item stats    avg_clk={:.2} avg_cnt={:.2} stdev={:.2}",
        r.item_stats.avg_clk, r.item_stats.avg_cnt, r.item_stats.stdev
    );
    println!(
        "pareto        top-20% items hold {:.1}% of clicks",
        r.pareto_top20_share * 100.0
    );
    println!("derived       T_hot={} T_click={}", r.t_hot_pareto, r.t_click_derived);
    Ok(())
}

fn cmd_detect(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let g = load_graph(flags.require("--input")?)?;
    let params = ricd_params(&flags)?;

    let seeds = Seeds {
        users: flags
            .get_all("--seed-user")
            .into_iter()
            .map(|s| s.parse().map(UserId).map_err(|e| format!("bad --seed-user: {e}")))
            .collect::<Result<_, _>>()?,
        items: flags
            .get_all("--seed-item")
            .into_iter()
            .map(|s| s.parse().map(ItemId).map_err(|e| format!("bad --seed-item: {e}")))
            .collect::<Result<_, _>>()?,
    };

    let result = RicdPipeline::new(params).with_seeds(seeds).run(&g);
    eprintln!(
        "detected {} groups ({} suspicious users, {} suspicious items) in {:?}",
        result.groups.len(),
        result.suspicious_users().len(),
        result.suspicious_items().len(),
        result.timings.total()
    );
    for (i, grp) in result.groups.iter().enumerate() {
        println!(
            "group {}: {} workers x {} targets (ridden hot items: {:?})",
            i + 1,
            grp.users.len(),
            grp.items.len(),
            grp.ridden_hot_items
        );
    }
    if let Some(path) = flags.get("--output") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        let mut f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
        f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let g = load_graph(flags.require("--input")?)?;
    let truth_path = flags.require("--truth")?;
    let truth: fake_click_detection::datagen::GroundTruth = {
        let text = std::fs::read_to_string(truth_path).map_err(|e| format!("{truth_path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{truth_path}: {e}"))?
    };

    let methods: Vec<Method> = match flags.get("--method") {
        None => Method::fig8_lineup().to_vec(),
        Some(name) => vec![Method::fig8_lineup()
            .into_iter()
            .chain(Method::table6_lineup())
            .find(|m| m.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown method `{name}`"))?],
    };

    let cfg = MethodConfig::default();
    let outcomes: Vec<_> = methods
        .iter()
        .map(|&m| {
            let result = cfg.run(m, &g);
            let eval = evaluate(&result, &truth);
            figures::MethodOutcome {
                method: m,
                name: m.name().to_string(),
                eval,
                detect_ms: 0.0,
                screen_ms: 0.0,
                total_ms: result.timings.total().as_secs_f64() * 1e3,
            }
        })
        .collect();
    println!("{}", report::format_quality(&outcomes));
    Ok(())
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let flags = Flags(args);
    let mut cfg = CampaignConfig::default();
    if let Some(days) = flags.parse("--days")? {
        cfg.num_days = days;
        cfg.delist_day = days;
    }
    let method_cfg = MethodConfig::default();
    let report = figures::fig10(&cfg, &method_cfg, 0.5)?;
    match report.detection_day {
        Some(day) => println!(
            "detected on day {day} (worker recall {:.0}%)",
            report.worker_recall_at_detection * 100.0
        ),
        None => println!("not detected within the window"),
    }
    println!("day  normal  fake");
    for d in &report.cleaned {
        println!("{:>3}  {:>6}  {:>5}", d.day, d.normal_clicks, d.fake_clicks);
    }
    Ok(())
}
