//! `ricd` — command-line front end for the fake-click-detection library.
//!
//! ```text
//! ricd generate --output clicks.tsv --truth truth.json [--scale default]
//! ricd stats    --input clicks.tsv
//! ricd detect   --input clicks.tsv [--k1 10 --k2 10 --alpha 1.0 ...]
//! ricd eval     --input clicks.tsv --truth truth.json [--method RICD]
//! ricd campaign [--days 13]
//! ```
//!
//! Click tables are TSV (`user \t item \t clicks`); ground truth and
//! detection reports are JSON.

use fake_click_detection::core::detect::Seeds;
use fake_click_detection::engine::WorkerPool;
use fake_click_detection::eval::figures;
use fake_click_detection::graph::io as graph_io;
use fake_click_detection::obs::{MetricsRegistry, MetricsSnapshot, StderrTraceRecorder};
use fake_click_detection::prelude::*;
use fake_click_detection::serve::{Client, RouterConfig, ServeConfig, ServeState};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;

/// CLI failures, split by exit code: usage errors exit 2, runtime (I/O,
/// parse, generation) errors exit 1. A *degraded* detection run is not an
/// error — it exits 0 with a warning on stderr, because a best-effort
/// report is still a report.
enum CliError {
    /// The invocation itself is wrong (missing/unknown flag or command).
    Usage(String),
    /// The invocation is fine but the work failed (I/O, malformed data).
    Runtime(String),
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Runtime(s)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
ricd - Ride Item's Coattails attack detection (ICDE 2021 reproduction)

USAGE:
    ricd generate --output <clicks.tsv> [--truth <truth.json>]
                  [--scale tiny|small|default|100x|1000x] [--groups <N>] [--seed <N>]
    ricd stats    --input <clicks.tsv> [--lossy]
    ricd detect   --input <clicks.tsv> [--output <report.json>]
                  [--k1 <N>] [--k2 <N>] [--alpha <F>]
                  [--t-hot <N>] [--t-click <N>]
                  [--seed-user <id>]... [--seed-item <id>]...
                  [--shards <N>] [--shard-max-users <N>] [--kernel auto|wedge]
                  [--lossy] [--deadline-ms <N>] [--max-groups <N>]
                  [--metrics-out <m.json>] [--metrics-count-only] [--trace]
    ricd eval     --input <clicks.tsv> --truth <truth.json> [--method <NAME>]
                  [--lossy] [--metrics-out <m.json>] [--metrics-count-only]
                  [--trace]
    ricd eval     --adversarial [--budgets <N,N,...>] [--rounds <N>]
                  [--params default|derived] [--scale tiny|small]
                  [--seed <N>] [--target-flagged <N>] [--workers <N>]
                  [--out <report.json>]
    ricd campaign [--days <N>]
    ricd stream   [--scenario burst|slow-drip] [--seed <N>]
                  [--window <TICKS>] [--decay <TICKS>] [--detect-every <N>]
                  [--flag-fraction <F>] [--out <report.json>]
                  [--params default|derived]
                  [--k1 <N>] [--k2 <N>] [--alpha <F>]
                  [--t-hot <N>] [--t-click <N>]
                  [--metrics-out <m.json>] [--metrics-count-only] [--trace]
    ricd serve    [--port <N>] [--oneshot] [--resume <ckpt.json>]
                  [--queue <N>] [--swap-every <N>] [--max-connections <N>]
                  [--workers <N>] [--checkpoint-out <ckpt.json>]
                  [--io-timeout-ms <N>]
                  [--shards <N>] [--buffer-per-shard <N>]
                  [--checkpoint-dir <DIR>] [--checkpoint-every <N>]
                  [--resume-manifest <manifest.json|DIR>]
                  [--k1 <N>] [--k2 <N>] [--alpha <F>]
                  [--t-hot <N>] [--t-click <N>]
                  [--metrics-out <m.json>] [--metrics-count-only]
    ricd client   <op> --addr <HOST:PORT> ...
        ingest     --input <clicks.tsv> [--batch <N>] [--start-seq <N>]
        query      [--user <id>]... [--item <id>]...
        recommend  --user <id> [--n <N>]
        metrics    [--count-only] [--filter <PREFIX>] [--output <m.json>]
        checkpoint [--output <ckpt.json>]
        check      --truth <truth.json> [--min-recall <F>]
        status
        shutdown

Click tables are TSV lines `user<TAB>item<TAB>clicks`.

FAULT TOLERANCE:
    --lossy          quarantine malformed TSV lines (reported on stderr)
                     instead of aborting the read
    --deadline-ms N  wall-clock budget; past it the run degrades to the
                     naive detector and warns instead of failing
    --max-groups N   cap the report at the N largest groups

SHARDING:
    --shards N           run detection sharded: split the pre-filtered
                         graph into ~N independent units (connected
                         components, hash-splitting any giant) and prune
                         them concurrently; output is identical to the
                         unsharded run
    --shard-max-users N  shard by an explicit per-shard user cap instead
                         of a target count (overrides --shards)
    --kernel K           survival-kernel selection for sharded runs:
                         `auto` (default; per-anchor dispatch between the
                         wedge, blocked-bitset, and sorted kernels) or
                         `wedge` (wedge counting only — the baseline for
                         perf comparisons; output is identical either way)

OBSERVABILITY:
    --metrics-out F        write the run's metrics snapshot (counters,
                           gauges, histograms, span timings) as JSON to F;
                           with `eval`, requires a single --method
    --metrics-count-only   zero all durations in the snapshot, keeping
                           counts, so repeat runs are byte-identical
    --trace                stream a human-readable span trace to stderr

SERVING:
    `ricd serve` runs the online detection daemon on 127.0.0.1 (port 0 =
    ephemeral; the bound address is printed as `listening on HOST:PORT`).
    Batches ingest through a bounded queue (--queue), detection reruns
    every --swap-every batches, and --oneshot serves exactly one client
    connection then drains and exits. `ricd client` speaks the
    length-prefixed JSON wire protocol; `client check --truth` exits 1
    unless every planted worker/target is flagged by the live view.
    A frame that stalls mid-read past --io-timeout-ms closes the
    connection (slow-loris guard, counted in serve.conn_timeouts).

    `ricd serve --shards N` runs the supervised multi-shard topology:
    ingest is hash-routed (with halo replication of shared items) to N
    crash-isolated shard workers; a dead shard restarts from its last
    coordinated checkpoint and replays its log, losing no accepted batch.
    While a shard is down, queries answer from the live shards tagged
    DEGRADED, and `ricd client status` shows per-shard health, restart
    counts, and the quorum epoch watermark (degraded status still exits
    0 — the topology is serving). Coordinated checkpoints write per-shard
    files plus a manifest.json commit point under --checkpoint-dir every
    --checkpoint-every accepted batches (and on `client checkpoint`);
    --resume-manifest restores the whole topology from one.

STREAMING:
    `ricd stream` replays a timestamped attack scenario through the
    windowed streaming detector and reports per-campaign detection
    latency: batches-to-flag, sim-ticks-to-flag, and per-phase
    recall/precision. `--window T` keeps only clicks newer than T ticks
    (sliding window); `--decay H` halves edge weight every H ticks;
    with neither, the window is infinite and the final result equals a
    one-shot batch run over the whole scenario. `--detect-every N` runs
    detection every Nth batch; `--flag-fraction F` sets the fraction of
    a campaign's workers that must be flagged before the campaign
    counts as detected. `--out` writes the full report JSON;
    `--metrics-out` captures the `stream.*` metric family.
    `--params derived` resolves T_hot/T_click from the scenario's own
    aggregate table (Pareto rule + Eq 4) instead of the paper's
    operating point; explicit threshold flags override either base.

ADVERSARIAL LAB:
    `ricd eval --adversarial` needs no input files: it plants every
    detector-aware attacker strategy (paper-optimal, camouflage sweep,
    budget splitting, hot-item mimicry, slow drip) at each `--budgets`
    click budget against a synthetic world, runs detection at the
    round-0 operating point, and lets the Module-3 feedback loop relax
    the thresholds for up to `--rounds` extra rounds whenever fewer
    than `--target-flagged` nodes are flagged. The matrix prints one
    row per strategy x budget cell (round-0 recall, final recall,
    recovery, collateral); `--out` writes the deterministic JSON
    report (`BENCH_adversarial.json` in CI).

EXIT CODES:
    0  success (including degraded runs, which warn on stderr)
    1  runtime failure (I/O, malformed data, rejected wire frames)
    2  usage error
";

/// Minimal `--key value` parser; flags may repeat.
struct Flags<'a>(&'a [String]);

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.0
            .windows(2)
            .find(|w| w[0] == key)
            .map(|w| w[1].as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&'a str> {
        self.0
            .windows(2)
            .filter(|w| w[0] == key)
            .map(|w| w[1].as_str())
            .collect()
    }

    /// True if the bare (value-less) flag `key` is present.
    fn has(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        // A value flag dangling at the end of the line must not be
        // silently ignored: `detect --input x --deadline-ms` would
        // otherwise run unbudgeted.
        if self.0.last().map(String::as_str) == Some(key) {
            return Err(CliError::Usage(format!("{key} requires a value")));
        }
        self.get(key)
            .map(|v| {
                v.parse()
                    .map_err(|e| CliError::Usage(format!("bad {key}: {e}")))
            })
            .transpose()
    }

    fn require(&self, key: &str) -> Result<&'a str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing {key}")))
    }
}

/// Loads a click table; with `lossy`, malformed lines are quarantined and
/// reported on stderr instead of failing the command. When a registry is
/// supplied, the lossy read records `io.records_ingested` /
/// `io.lines_quarantined` into it.
fn load_graph(
    path: &str,
    lossy: bool,
    metrics: Option<&MetricsRegistry>,
) -> Result<fake_click_detection::graph::BipartiteGraph, CliError> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    if lossy {
        let reader = BufReader::new(file);
        let read = match metrics {
            Some(m) => graph_io::read_tsv_lossy_metered(reader, m),
            None => graph_io::read_tsv_lossy(reader),
        }
        .map_err(|e| format!("{path}: {e}"))?;
        if !read.errors.is_empty() {
            eprintln!(
                "warning: {path}: quarantined {} malformed line(s):",
                read.errors.len()
            );
            for err in read.errors.iter().take(10) {
                eprintln!("warning:   {err}");
            }
            if read.errors.len() > 10 {
                eprintln!("warning:   ... and {} more", read.errors.len() - 10);
            }
        }
        Ok(read.graph)
    } else {
        Ok(graph_io::read_tsv(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?)
    }
}

fn ricd_params(flags: &Flags) -> Result<RicdParams, CliError> {
    ricd_params_over(RicdParams::default(), flags)
}

/// Applies the explicit `--k1`/`--t-hot`/… flags over an arbitrary base —
/// the seam `--params derived` uses so data-derived thresholds can still be
/// overridden per knob.
fn ricd_params_over(base: RicdParams, flags: &Flags) -> Result<RicdParams, CliError> {
    let mut p = base;
    if let Some(v) = flags.parse("--k1")? {
        p.k1 = v;
    }
    if let Some(v) = flags.parse("--k2")? {
        p.k2 = v;
    }
    if let Some(v) = flags.parse("--alpha")? {
        p.alpha = v;
    }
    if let Some(v) = flags.parse("--t-hot")? {
        p.t_hot = v;
    }
    if let Some(v) = flags.parse("--t-click")? {
        p.t_click = v;
    }
    p.validate().map_err(CliError::Usage)?;
    Ok(p)
}

/// The observability flags shared by `detect` and `eval`: a fresh registry
/// (streaming spans to stderr under `--trace`) plus the snapshot destination
/// and whether to strip durations from it.
fn metrics_flags<'a>(
    flags: &Flags<'a>,
) -> Result<(MetricsRegistry, Option<&'a str>, bool), CliError> {
    // Same dangling-value guard as `Flags::parse`: a bare `--metrics-out`
    // at the end of the line must not silently discard the snapshot.
    if flags.0.last().map(String::as_str) == Some("--metrics-out") {
        return Err(CliError::Usage("--metrics-out requires a value".into()));
    }
    let registry = MetricsRegistry::new();
    if flags.has("--trace") {
        registry.set_recorder(Arc::new(StderrTraceRecorder));
    }
    Ok((
        registry,
        flags.get("--metrics-out"),
        flags.has("--metrics-count-only"),
    ))
}

/// Writes `registry`'s snapshot as pretty JSON to `path`, if one was given.
fn write_snapshot(
    registry: &MetricsRegistry,
    path: Option<&str>,
    count_only: bool,
) -> Result<(), CliError> {
    let Some(path) = path else { return Ok(()) };
    let snap = registry.snapshot();
    let snap = if count_only { snap.count_only() } else { snap };
    let json = serde_json::to_string_pretty(&snap).map_err(|e| e.to_string())?;
    let mut f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
    f.write_all(b"\n").map_err(|e| e.to_string())?;
    eprintln!("wrote {path}");
    Ok(())
}

/// Assembles the run budget from `--deadline-ms` / `--max-groups`.
fn run_budget(flags: &Flags) -> Result<RunBudget, CliError> {
    let mut budget = RunBudget::none();
    if let Some(ms) = flags.parse::<u64>("--deadline-ms")? {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = flags.parse::<usize>("--max-groups")? {
        budget = budget.with_max_groups(n);
    }
    Ok(budget)
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let flags = Flags(args);
    let output = flags.require("--output")?;
    // The 100× preset pairs its own attack mix: ten times the planted
    // groups so the fake-to-organic ratio matches the smaller scales.
    let (mut dataset_cfg, mut attack) = match flags.get("--scale") {
        None | Some("default") => (DatasetConfig::default(), AttackConfig::evaluation()),
        Some("small") => (DatasetConfig::small(), AttackConfig::evaluation()),
        Some("tiny") => (DatasetConfig::tiny(), AttackConfig::evaluation()),
        Some("100x") => (DatasetConfig::scale100(), AttackConfig::scale100()),
        Some("1000x") => (DatasetConfig::scale1000(), AttackConfig::scale1000()),
        Some(other) => return Err(CliError::Usage(format!("unknown scale `{other}`"))),
    };
    if let Some(seed) = flags.parse("--seed")? {
        dataset_cfg.seed = seed;
    }
    if let Some(groups) = flags.parse("--groups")? {
        attack.num_groups = groups;
    }
    let ds = generate(&dataset_cfg, &attack)?;

    let file = File::create(output).map_err(|e| format!("{output}: {e}"))?;
    graph_io::write_tsv(&ds.graph, BufWriter::new(file)).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {}: {} users, {} items, {} records, {} clicks ({} planted groups)",
        output,
        ds.graph.num_users(),
        ds.graph.num_items(),
        ds.graph.num_edges(),
        ds.graph.total_clicks(),
        ds.truth.groups.len()
    );

    if let Some(truth_path) = flags.get("--truth") {
        let json = serde_json::to_string_pretty(&ds.truth).map_err(|e| e.to_string())?;
        let mut f = File::create(truth_path).map_err(|e| format!("{truth_path}: {e}"))?;
        f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
        eprintln!("wrote {truth_path}");
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let flags = Flags(args);
    let g = load_graph(flags.require("--input")?, flags.has("--lossy"), None)?;
    let r = figures::dataset_report(&g);
    println!("users         {}", r.scale.users);
    println!("items         {}", r.scale.items);
    println!("edges         {}", r.scale.edges);
    println!("total clicks  {}", r.scale.total_clicks);
    println!(
        "user stats    avg_clk={:.2} avg_cnt={:.2} stdev={:.2}",
        r.user_stats.avg_clk, r.user_stats.avg_cnt, r.user_stats.stdev
    );
    println!(
        "item stats    avg_clk={:.2} avg_cnt={:.2} stdev={:.2}",
        r.item_stats.avg_clk, r.item_stats.avg_cnt, r.item_stats.stdev
    );
    println!(
        "pareto        top-20% items hold {:.1}% of clicks",
        r.pareto_top20_share * 100.0
    );
    println!(
        "derived       T_hot={} T_click={}",
        r.t_hot_pareto, r.t_click_derived
    );
    Ok(())
}

fn cmd_detect(args: &[String]) -> Result<(), CliError> {
    let flags = Flags(args);
    // Validate every flag before touching the filesystem: a usage error
    // (exit 2) must win over an I/O error (exit 1) so a typo'd invocation
    // never half-runs against a large input.
    let input = flags.require("--input")?;
    let params = ricd_params(&flags)?;
    let budget = run_budget(&flags)?;
    let (registry, metrics_out, count_only) = metrics_flags(&flags)?;

    let seeds = Seeds {
        users: flags
            .get_all("--seed-user")
            .into_iter()
            .map(|s| {
                s.parse()
                    .map(UserId)
                    .map_err(|e| CliError::Usage(format!("bad --seed-user: {e}")))
            })
            .collect::<Result<_, _>>()?,
        items: flags
            .get_all("--seed-item")
            .into_iter()
            .map(|s| {
                s.parse()
                    .map(ItemId)
                    .map_err(|e| CliError::Usage(format!("bad --seed-item: {e}")))
            })
            .collect::<Result<_, _>>()?,
    };

    let shard_cfg = {
        let shards = flags.parse("--shards")?;
        let max_users = flags.parse("--shard-max-users")?;
        let kernel = match flags.get("--kernel") {
            None | Some("auto") => KernelSelection::Auto,
            Some("wedge") => KernelSelection::WedgeOnly,
            Some(other) => {
                return Err(CliError::Usage(format!(
                    "--kernel must be `auto` or `wedge`, got `{other}`"
                )))
            }
        };
        (shards.is_some() || max_users.is_some()).then_some(ShardConfig {
            shards,
            max_users,
            kernel,
        })
    };

    let g = load_graph(input, flags.has("--lossy"), Some(&registry))?;
    let pipeline = RicdPipeline::new(params)
        .with_seeds(seeds)
        .with_budget(budget)
        .with_metrics(registry.clone());
    let result = match &shard_cfg {
        Some(cfg) => pipeline.run_sharded(&g, cfg),
        None => pipeline.run(&g),
    };
    if let RunStatus::Degraded { reason, phase } = &result.status {
        eprintln!("warning: degraded run (phase `{phase}`): {reason}");
    }
    eprintln!(
        "detected {} groups ({} suspicious users, {} suspicious items) in {:?}",
        result.groups.len(),
        result.suspicious_users().len(),
        result.suspicious_items().len(),
        result.timings.total()
    );
    for (i, grp) in result.groups.iter().enumerate() {
        println!(
            "group {}: {} workers x {} targets (ridden hot items: {:?})",
            i + 1,
            grp.users.len(),
            grp.items.len(),
            grp.ridden_hot_items
        );
    }
    if let Some(path) = flags.get("--output") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        let mut f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
        f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    write_snapshot(&registry, metrics_out, count_only)
}

fn cmd_eval(args: &[String]) -> Result<(), CliError> {
    let flags = Flags(args);
    if flags.has("--adversarial") {
        return cmd_eval_adversarial(&flags);
    }
    let (registry, metrics_out, count_only) = metrics_flags(&flags)?;
    let trace = flags.has("--trace");
    let g = load_graph(
        flags.require("--input")?,
        flags.has("--lossy"),
        Some(&registry),
    )?;
    let truth_path = flags.require("--truth")?;
    let truth: fake_click_detection::datagen::GroundTruth = {
        let text = std::fs::read_to_string(truth_path).map_err(|e| format!("{truth_path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{truth_path}: {e}"))?
    };

    let methods: Vec<Method> = match flags.get("--method") {
        None => Method::fig8_lineup().to_vec(),
        Some(name) => vec![Method::fig8_lineup()
            .into_iter()
            .chain(Method::table6_lineup())
            .find(|m| m.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| CliError::Usage(format!("unknown method `{name}`")))?],
    };

    if metrics_out.is_some() && methods.len() != 1 {
        return Err(CliError::Usage(
            "eval --metrics-out requires a single --method".into(),
        ));
    }

    let cfg = MethodConfig::default();
    let outcomes: Vec<_> = methods
        .iter()
        .map(|&m| {
            // One registry per method, so each snapshot describes exactly
            // that run; a single-method invocation reuses the command
            // registry so the io.* counters from loading land in the same
            // --metrics-out snapshot as the pipeline spans.
            let method_registry = if methods.len() == 1 {
                registry.clone()
            } else {
                let r = MetricsRegistry::new();
                if trace {
                    r.set_recorder(Arc::new(StderrTraceRecorder));
                }
                r
            };
            let result = cfg.run_metered(m, &g, &method_registry);
            let eval = evaluate(&result, &truth);
            figures::MethodOutcome::from_snapshot(m, eval, &method_registry.snapshot())
        })
        .collect();
    println!("{}", report::format_quality(&outcomes));
    println!("{}", report::format_timing(&outcomes));
    write_snapshot(&registry, metrics_out, count_only)
}

/// `ricd eval --adversarial`: the adaptive-attacker matrix — every
/// detector-aware strategy × budget cell over a planted world, with the
/// Module-3 feedback loop re-tuning thresholds between rounds.
fn cmd_eval_adversarial(flags: &Flags) -> Result<(), CliError> {
    if flags.0.last().map(String::as_str) == Some("--out") {
        return Err(CliError::Usage("--out requires a value".into()));
    }
    let mut cfg = AdversarialConfig::tiny(flags.parse::<u64>("--seed")?.unwrap_or(0x5eed_0010));
    match flags.get("--scale") {
        None | Some("tiny") => {}
        Some("small") => cfg.dataset = DatasetConfig::small(),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown --scale `{other}` for --adversarial (expected tiny|small)"
            )))
        }
    }
    if let Some(csv) = flags.get("--budgets") {
        cfg.budgets = csv
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("--budgets: `{s}`: {e}")))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(r) = flags.parse("--rounds")? {
        cfg.feedback_rounds = r;
    }
    if let Some(mode) = flags.get("--params") {
        cfg.params_mode = ParamsMode::parse(mode).map_err(CliError::Usage)?;
    }
    if let Some(t) = flags.parse("--target-flagged")? {
        cfg.tuner.target_flagged = t;
    }
    if let Some(w) = flags.parse("--workers")? {
        cfg.workers = Some(w);
    }
    let report = run_adversarial(&cfg).map_err(CliError::Runtime)?;

    println!(
        "adversarial matrix: {} strategies x {} budgets (params {}, expectation >={} flagged)",
        report.strategies.len(),
        report.budgets.len(),
        report.params_mode,
        report.target_flagged
    );
    println!(
        "{:<18} {:>8} {:>7} {:>7} {:>9} {:>6} {:>10} {:>5}",
        "strategy", "budget", "r0", "final", "recovery", "rounds", "collateral", "conv"
    );
    for c in &report.cells {
        let collateral = c.rounds.last().map_or(0, |r| r.collateral);
        println!(
            "{:<18} {:>8} {:>7.3} {:>7.3} {:>+9.3} {:>6} {:>10} {:>5}",
            c.strategy,
            c.budget,
            c.round0_recall,
            c.final_recall,
            c.recovery,
            c.rounds.len(),
            collateral,
            if c.converged { "yes" } else { "no" }
        );
    }
    if let Some(path) = flags.get("--out") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        let mut f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
        f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
        f.write_all(b"\n").map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let flags = Flags(args);
    let params = ricd_params(&flags)?;
    let (registry, metrics_out, count_only) = metrics_flags(&flags)?;
    let mut cfg = ServeConfig::default();
    if let Some(n) = flags.parse("--queue")? {
        cfg.queue_capacity = n;
    }
    if let Some(n) = flags.parse("--swap-every")? {
        cfg.swap_every_batches = n;
    }
    if let Some(n) = flags.parse("--max-connections")? {
        cfg.max_connections = n;
    }
    cfg.oneshot = flags.has("--oneshot");
    if let Some(ms) = flags.parse("--io-timeout-ms")? {
        cfg.io_timeout = std::time::Duration::from_millis(ms);
    }
    let port: u16 = flags.parse("--port")?.unwrap_or(0);

    // --shards N runs the supervised multi-shard topology (routed ingest,
    // crash-recovering shard workers, degraded-mode serving). Without it
    // the classic single-state daemon runs.
    if let Some(shards) = flags.parse::<usize>("--shards")? {
        let mut rcfg = RouterConfig {
            shards,
            params,
            serve: cfg,
            ..RouterConfig::default()
        };
        if let Some(n) = flags.parse("--workers")? {
            rcfg.workers_per_shard = n;
        }
        if let Some(n) = flags.parse("--buffer-per-shard")? {
            rcfg.buffer_per_shard = n;
        }
        if let Some(n) = flags.parse("--checkpoint-every")? {
            rcfg.checkpoint_every_batches = n;
        }
        if let Some(dir) = flags.get("--checkpoint-dir") {
            rcfg.checkpoint_dir = Some(std::path::PathBuf::from(dir));
        }
        let resume = flags.get("--resume-manifest").map(std::path::Path::new);
        if let Some(path) = resume {
            eprintln!("resuming {shards} shard(s) from {}", path.display());
        }
        let handle = fake_click_detection::serve::start_router(
            rcfg,
            registry.clone(),
            ("127.0.0.1", port),
            resume,
        )
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
        println!("listening on {}", handle.addr());
        std::io::stdout().flush().map_err(|e| e.to_string())?;
        let states = handle.join();
        for (i, s) in states.iter().enumerate() {
            eprintln!("shard {i} drained (next_seq {})", s.next_seq());
        }
        return write_snapshot(&registry, metrics_out, count_only);
    }

    let pool = match flags.parse("--workers")? {
        Some(n) => WorkerPool::new(n),
        None => WorkerPool::default_for_host(),
    };
    let pipeline = RicdPipeline::new(params)
        .with_pool(pool)
        .with_metrics(registry.clone());

    let state = match flags.get("--resume") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let ckpt: fake_click_detection::core::prelude::Checkpoint =
                serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("resuming from {path} (next_seq {})", ckpt.next_seq);
            ServeState::restore(cfg, pipeline, ckpt)
        }
        None => ServeState::new(cfg, pipeline),
    };

    let handle = fake_click_detection::serve::start(state, ("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    // Scrapeable by scripts and the oneshot tests: the first stdout line is
    // always the bound address.
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    let state = handle.join();
    eprintln!(
        "drained; {} batches ingested (next_seq {})",
        state.next_seq(),
        state.next_seq()
    );
    if let Some(path) = flags.get("--checkpoint-out") {
        let json = serde_json::to_string_pretty(&state.checkpoint()).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    write_snapshot(&registry, metrics_out, count_only)
}

/// Retains only the snapshot entries whose name starts with `prefix`
/// (events filter on their name field). Used by `client metrics --filter`
/// so restart comparisons can select the view-derived `serve.view_*`
/// gauges, which must survive a checkpoint/restore round trip.
fn filter_snapshot(snap: &mut MetricsSnapshot, prefix: &str) {
    snap.counters.retain(|(n, _)| n.starts_with(prefix));
    snap.gauges.retain(|(n, _)| n.starts_with(prefix));
    snap.histograms.retain(|(n, _)| n.starts_with(prefix));
    snap.spans.retain(|(n, _)| n.starts_with(prefix));
    snap.events.retain(|e| e.name.starts_with(prefix));
}

fn cmd_client(args: &[String]) -> Result<(), CliError> {
    let Some(op) = args.first().map(String::as_str) else {
        return Err(CliError::Usage("client requires an operation".into()));
    };
    let flags = Flags(&args[1..]);
    let addr = flags.require("--addr")?;
    // Validate per-op flags BEFORE connecting: usage errors (exit 2) must
    // win over connection errors (exit 1).
    match op {
        "ingest" | "query" | "recommend" | "metrics" | "checkpoint" | "check" | "status"
        | "shutdown" => {}
        other => return Err(CliError::Usage(format!("unknown client op `{other}`"))),
    }
    let parse_ids = |key: &str| -> Result<Vec<u32>, CliError> {
        flags
            .get_all(key)
            .into_iter()
            .map(|s| {
                s.parse()
                    .map_err(|e| CliError::Usage(format!("bad {key}: {e}")))
            })
            .collect()
    };

    match op {
        "ingest" => {
            let input = flags.require("--input")?;
            let batch_size: usize = flags.parse("--batch")?.unwrap_or(1000).max(1);
            let start_seq: u64 = flags.parse("--start-seq")?.unwrap_or(0);
            let g = load_graph(input, flags.has("--lossy"), None)?;
            let records: Vec<(UserId, ItemId, u32)> = g.edges().collect();
            let mut c = connect(addr)?;
            let mut seq = start_seq;
            let mut rejections = 0u64;
            let mut attempts = 0u64;
            for chunk in records.chunks(batch_size) {
                let stats = c
                    .ingest_blocking(seq, chunk)
                    .map_err(|e| CliError::Runtime(e.to_string()))?;
                rejections += stats.rejections;
                attempts += stats.attempts;
                seq += 1;
            }
            eprintln!(
                "ingested {} batches ({} records) in {attempts} attempt(s), \
                 {rejections} backpressure rejection(s)",
                seq - start_seq,
                records.len(),
            );
            Ok(())
        }
        "query" => {
            let users: Vec<UserId> = parse_ids("--user")?.into_iter().map(UserId).collect();
            let items: Vec<ItemId> = parse_ids("--item")?.into_iter().map(ItemId).collect();
            let mut c = connect(addr)?;
            let report = c
                .query_risk(users, items)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            println!(
                "epoch {} ({} groups){}",
                report.epoch,
                report.groups,
                if report.degraded {
                    format!(" DEGRADED missing_shards={:?}", report.missing_shards)
                } else {
                    String::new()
                }
            );
            for (u, v) in &report.users {
                println!(
                    "user {}: {} score={:.3}{}",
                    u.0,
                    if v.flagged { "FLAGGED" } else { "clear" },
                    v.score,
                    v.group.map(|g| format!(" group={g}")).unwrap_or_default()
                );
            }
            for (i, v) in &report.items {
                println!(
                    "item {}: {} score={:.3}{}",
                    i.0,
                    if v.flagged { "FLAGGED" } else { "clear" },
                    v.score,
                    v.group.map(|g| format!(" group={g}")).unwrap_or_default()
                );
            }
            Ok(())
        }
        "recommend" => {
            let user = UserId(
                flags
                    .parse("--user")?
                    .ok_or_else(|| CliError::Usage("missing --user".into()))?,
            );
            let n: usize = flags.parse("--n")?.unwrap_or(10);
            let mut c = connect(addr)?;
            let rec = c
                .recommend(user, n)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            println!(
                "epoch {}{}",
                rec.epoch,
                if rec.degraded { " (degraded)" } else { "" }
            );
            for (item, score) in rec.items {
                println!("item {}  score={score:.4}", item.0);
            }
            Ok(())
        }
        "metrics" => {
            let mut c = connect(addr)?;
            let mut snap = c
                .metrics(flags.has("--count-only"))
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            if let Some(prefix) = flags.get("--filter") {
                filter_snapshot(&mut snap, prefix);
            }
            let json = serde_json::to_string_pretty(&snap).map_err(|e| e.to_string())?;
            match flags.get("--output") {
                Some(path) => {
                    std::fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                None => println!("{json}"),
            }
            Ok(())
        }
        "checkpoint" => {
            // A monolith answers with the checkpoint itself (written to
            // --output); a sharded router writes its own files and answers
            // with the manifest path.
            let output = flags.get("--output");
            let mut c = connect(addr)?;
            let resp = c
                .request(&fake_click_detection::serve::Request::Checkpoint)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            match resp {
                fake_click_detection::serve::Response::CheckpointTaken(ckpt) => {
                    let output =
                        output.ok_or_else(|| CliError::Usage("missing --output".into()))?;
                    let json = serde_json::to_string_pretty(&ckpt).map_err(|e| e.to_string())?;
                    std::fs::write(output, json).map_err(|e| format!("{output}: {e}"))?;
                    eprintln!(
                        "wrote {output} ({} records, {} groups, next_seq {})",
                        ckpt.records.len(),
                        ckpt.groups.len(),
                        ckpt.next_seq
                    );
                    Ok(())
                }
                fake_click_detection::serve::Response::ManifestWritten {
                    path,
                    shards,
                    epoch,
                } => {
                    if path.is_empty() {
                        eprintln!(
                            "coordinated checkpoint taken in memory ({shards} shards, \
                             epoch {epoch}); start the server with --checkpoint-dir \
                             to persist manifests"
                        );
                    } else {
                        eprintln!("wrote {path} ({shards} shards, epoch {epoch})");
                        println!("{path}");
                    }
                    Ok(())
                }
                fake_click_detection::serve::Response::Error { message } => {
                    Err(CliError::Runtime(format!("server: {message}")))
                }
                other => Err(CliError::Runtime(format!("unexpected response: {other:?}"))),
            }
        }
        "status" => {
            let mut c = connect(addr)?;
            let st = c.status().map_err(|e| CliError::Runtime(e.to_string()))?;
            println!(
                "epoch {}  quorum {}  {}",
                st.epoch,
                st.quorum,
                if st.degraded { "DEGRADED" } else { "healthy" }
            );
            println!("shard  state       epoch  backlog  next_seq  restarts");
            for s in &st.shards {
                println!(
                    "{:>5}  {:<10}  {:>5}  {:>7}  {:>8}  {:>8}",
                    s.shard, s.state, s.epoch, s.backlog, s.next_seq, s.restarts
                );
            }
            // Degraded status is exit 0: visibility, not failure — the
            // topology is still serving.
            Ok(())
        }
        "check" => {
            let truth_path = flags.require("--truth")?;
            let min_recall: f64 = flags.parse("--min-recall")?.unwrap_or(1.0);
            let text =
                std::fs::read_to_string(truth_path).map_err(|e| format!("{truth_path}: {e}"))?;
            let truth: fake_click_detection::datagen::GroundTruth =
                serde_json::from_str(&text).map_err(|e| format!("{truth_path}: {e}"))?;
            let users = truth.abnormal_users();
            let items = truth.abnormal_items();
            let mut c = connect(addr)?;
            let report = c
                .query_risk(users.clone(), items.clone())
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            let missed_users: Vec<u32> = report
                .users
                .iter()
                .filter(|(_, v)| !v.flagged)
                .map(|(u, _)| u.0)
                .collect();
            let missed_items: Vec<u32> = report
                .items
                .iter()
                .filter(|(_, v)| !v.flagged)
                .map(|(i, _)| i.0)
                .collect();
            println!(
                "epoch {}: {}/{} planted workers and {}/{} planted targets flagged",
                report.epoch,
                users.len() - missed_users.len(),
                users.len(),
                items.len() - missed_items.len(),
                items.len()
            );
            let total = users.len() + items.len();
            let flagged = total - missed_users.len() - missed_items.len();
            let recall = if total == 0 {
                1.0
            } else {
                flagged as f64 / total as f64
            };
            if recall + 1e-9 >= min_recall {
                Ok(())
            } else {
                Err(CliError::Runtime(format!(
                    "planted attack under-flagged: recall {recall:.3} < {min_recall:.3} \
                     (missed users {missed_users:?}, missed items {missed_items:?})"
                )))
            }
        }
        "shutdown" => {
            let mut c = connect(addr)?;
            c.shutdown().map_err(|e| CliError::Runtime(e.to_string()))?;
            eprintln!("server is draining");
            Ok(())
        }
        _ => unreachable!("validated above"),
    }
}

/// Connects to a serve daemon (runtime error — exit 1 — on refusal).
fn connect(addr: &str) -> Result<Client, CliError> {
    Client::connect(addr).map_err(|e| CliError::Runtime(format!("{addr}: {e}")))
}

fn cmd_campaign(args: &[String]) -> Result<(), CliError> {
    let flags = Flags(args);
    let mut cfg = CampaignConfig::default();
    if let Some(days) = flags.parse("--days")? {
        cfg.num_days = days;
        cfg.delist_day = days;
    }
    let method_cfg = MethodConfig::default();
    let report = figures::fig10(&cfg, &method_cfg, 0.5)?;
    match report.detection_day {
        Some(day) => println!(
            "detected on day {day} (worker recall {:.0}%)",
            report.worker_recall_at_detection * 100.0
        ),
        None => println!("not detected within the window"),
    }
    println!("day  normal  fake");
    for d in &report.cleaned {
        println!("{:>3}  {:>6}  {:>5}", d.day, d.normal_clicks, d.fake_clicks);
    }
    Ok(())
}

fn cmd_stream(args: &[String]) -> Result<(), CliError> {
    let flags = Flags(args);
    let (registry, metrics_out, count_only) = metrics_flags(&flags)?;
    // Same dangling-value guard as --metrics-out: a bare `--out` at the
    // end of the line must not silently discard the report.
    if flags.0.last().map(String::as_str) == Some("--out") {
        return Err(CliError::Usage("--out requires a value".into()));
    }
    let scenario_name = flags.get("--scenario").unwrap_or("burst");
    let mut scenario = match scenario_name {
        "burst" => ScenarioConfig::burst(),
        "slow-drip" => ScenarioConfig::slow_drip(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --scenario `{other}` (expected burst|slow-drip)"
            )))
        }
    };
    if let Some(seed) = flags.parse::<u64>("--seed")? {
        scenario.seed = seed;
    }
    let timeline = build_timeline(&scenario).map_err(CliError::Runtime)?;
    // --params derived resolves T_hot/T_click from the scenario's own
    // aggregate click table (the paper's Section IV-A derivations) instead
    // of the published operating point; explicit --t-hot/--t-click style
    // flags still override either base.
    let mode = match flags.get("--params") {
        None => ParamsMode::Default,
        Some(s) => ParamsMode::parse(s).map_err(CliError::Usage)?,
    };
    let base = match mode {
        ParamsMode::Default => RicdParams::default(),
        ParamsMode::Derived => {
            let mut b = GraphBuilder::new();
            for (u, v, c) in timeline.all_untimed() {
                b.add_click(u, v, c);
            }
            let p = params_for_mode(mode, &b.build());
            eprintln!("derived params: t_hot={} t_click={}", p.t_hot, p.t_click);
            p
        }
    };
    let mut cfg = StreamEvalConfig::new(ricd_params_over(base, &flags)?);
    if let Some(w) = flags.parse::<u64>("--window")? {
        cfg.window.window = Some(w);
    }
    if let Some(h) = flags.parse::<u64>("--decay")? {
        cfg.window.half_life = Some(h);
    }
    if let Some(n) = flags.parse::<u64>("--detect-every")? {
        cfg.window.detect_every = n;
    }
    if let Some(f) = flags.parse::<f64>("--flag-fraction")? {
        cfg.flag_fraction = f;
    }
    cfg.validate().map_err(CliError::Usage)?;
    let report = replay_timeline(&timeline, &cfg, &registry)?;
    println!(
        "scenario {scenario_name}: {} batches, {} records (evicted {}, late {}, peak window {})",
        report.batches, report.records, report.evicted, report.late, report.peak_window_records
    );
    for c in &report.campaigns {
        match (c.batches_to_flag, c.ticks_to_flag) {
            (Some(b), Some(t)) => println!(
                "campaign {}: workers {}, flagged {}, batches-to-flag {b}, ticks-to-flag {t}",
                c.campaign, c.workers, c.flagged_workers
            ),
            _ => println!(
                "campaign {}: workers {}, flagged {}, NOT FLAGGED",
                c.campaign, c.workers, c.flagged_workers
            ),
        }
        for p in &c.phases {
            println!(
                "  phase {:<6} @batch {:>3}: worker-recall {:.2}, precision {:.2}",
                p.phase, p.at_batch, p.worker_recall, p.precision
            );
        }
    }
    println!(
        "final: precision {:.3} recall {:.3} f1 {:.3}",
        report.final_precision, report.final_recall, report.final_f1
    );
    if let Some(path) = flags.get("--out") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        let mut f = File::create(path).map_err(|e| format!("{path}: {e}"))?;
        f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
        f.write_all(b"\n").map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    write_snapshot(&registry, metrics_out, count_only)?;
    Ok(())
}
