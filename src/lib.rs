#![warn(missing_docs)]

//! # fake-click-detection
//!
//! Facade crate for the reproduction of *Large-scale Fake Click Detection for
//! E-commerce Recommendation Systems* (ICDE 2021). It re-exports the public
//! APIs of the workspace crates so downstream users — and the `examples/` and
//! integration `tests/` in this repository — can depend on a single crate.
//!
//! ```
//! use fake_click_detection::prelude::*;
//!
//! // Generate a small synthetic Taobao-like dataset with planted attacks…
//! // (see examples/quickstart.rs for the full walkthrough)
//! ```

pub use ricd_baselines as baselines;
pub use ricd_core as core;
pub use ricd_datagen as datagen;
pub use ricd_engine as engine;
pub use ricd_eval as eval;
pub use ricd_graph as graph;
pub use ricd_obs as obs;
pub use ricd_recommender as recommender;
pub use ricd_serve as serve;
pub use ricd_table as table;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use ricd_core::prelude::*;
    pub use ricd_datagen::prelude::*;
    pub use ricd_eval::prelude::*;
    pub use ricd_graph::{BipartiteGraph, GraphBuilder, GraphView, ItemId, NodeId, UserId};
}
