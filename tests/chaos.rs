//! Chaos suite: deterministic fault injection against the detection
//! runtime. The contract under test, end to end:
//!
//! 1. **Never abort** — injected worker panics, corrupt bytes, truncated
//!    files, and replayed stream batches must surface as typed errors,
//!    quarantine reports, or degraded-but-complete runs; never as a crash.
//! 2. **Never silently wrong** — whenever a run completes despite faults,
//!    its output must either equal the fault-free run (transient faults,
//!    replays, crash/resume) or be explicitly marked (degraded status,
//!    quarantined lines).
//!
//! Every fault here is derived from a seed, so a failure replays exactly.

use fake_click_detection::core::prelude::*;
use fake_click_detection::engine::fault::{flip_bytes, replay_batch, truncate_at};
use fake_click_detection::engine::{
    partition_ranges, EngineError, FaultInjector, FaultPlan, WorkerPool,
};
use fake_click_detection::graph::{io as graph_io, GraphBuilder, ItemId, UserId};
use std::path::PathBuf;
use std::process::Command;

// ---------------------------------------------------------------- compute

/// Drives `rounds` bulk-synchronous supersteps through a pool while an
/// armed injector panics chosen (round, partition) cells, and returns the
/// per-round sums.
fn run_rounds(
    pool: &WorkerPool,
    inj: &FaultInjector,
    n: usize,
    rounds: usize,
) -> Vec<Result<u64, EngineError>> {
    let ranges = partition_ranges(n, pool.workers());
    (0..rounds)
        .map(|_| {
            inj.begin_round();
            pool.try_run_partitioned(n, |r| {
                let partition = ranges
                    .iter()
                    .position(|p| *p == r)
                    .expect("range maps to a partition");
                inj.maybe_panic(partition);
                r.map(|i| i as u64).sum::<u64>()
            })
            .map(|per| per.into_iter().sum())
        })
        .collect()
}

#[test]
fn seeded_panic_plans_never_abort_and_never_corrupt_results() {
    let pool = WorkerPool::new(4);
    let n = 400;
    let rounds = 5;
    let want: u64 = (0..n as u64).sum();
    for seed in 0..8u64 {
        let plan = FaultPlan::seeded(seed, rounds, pool.workers(), 3);
        let inj = FaultInjector::new(plan.clone());
        let got = run_rounds(&pool, &inj, n, rounds);
        for (round, result) in got.iter().enumerate() {
            let sum = result
                .as_ref()
                .unwrap_or_else(|e| panic!("seed {seed} round {round} failed: {e}"));
            assert_eq!(*sum, want, "seed {seed} round {round} wrong sum");
        }
        assert_eq!(
            inj.fired().len(),
            plan.len(),
            "seed {seed}: every planned fault actually fired"
        );
    }
}

#[test]
fn persistent_fault_surfaces_as_typed_error_not_a_crash() {
    let pool = WorkerPool::new(4);
    let inj = FaultInjector::new(FaultPlan::panic_at(0, 2).persistent());
    let results = run_rounds(&pool, &inj, 400, 2);
    match &results[0] {
        Err(EngineError::PartitionPanicked {
            partition, message, ..
        }) => {
            assert_eq!(*partition, 2);
            assert!(message.contains("injected fault"), "{message}");
        }
        Ok(_) => panic!("persistent fault must fail the round"),
    }
    // The next round is clean: the failed round poisoned nothing.
    assert!(results[1].is_ok(), "pool unusable after a failed round");
}

// ------------------------------------------------------------------- I/O

fn sample_graph() -> fake_click_detection::graph::BipartiteGraph {
    let mut b = GraphBuilder::new();
    for u in 0..40u32 {
        for v in 0..10u32 {
            b.add_click(UserId(u), ItemId(v), 1 + (u + v) % 7);
        }
    }
    b.build()
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    let bytes = graph_io::to_bytes(&sample_graph());
    for n in 0..bytes.len() {
        let cut = truncate_at(&bytes, n);
        match graph_io::from_bytes(cut.into()) {
            Err(graph_io::IoError::Corrupt(_)) => {}
            Ok(_) => panic!("truncation at byte {n} parsed as a full graph"),
            Err(other) => panic!("truncation at byte {n}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn bit_flips_never_panic_and_accepted_graphs_validate() {
    let bytes = graph_io::to_bytes(&sample_graph());
    let mut accepted = 0;
    for seed in 0..64u64 {
        let flipped = flip_bytes(&bytes, seed, 3);
        if let Ok(g) = graph_io::from_bytes(flipped.into()) {
            // A payload flip can masquerade as data (no checksum in the
            // format) — but it must never produce a structurally broken
            // graph.
            g.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: accepted graph invalid: {e}"));
            accepted += 1;
        }
    }
    // Most 3-bit faults land in the header/length machinery and are
    // rejected; some payload flips parse. Both paths must be exercised.
    assert!(accepted < 64, "some flips must be rejected");
}

#[test]
fn flipped_tsv_is_quarantined_line_by_line() {
    let g = sample_graph();
    let mut tsv = Vec::new();
    graph_io::write_tsv(&g, &mut tsv).unwrap();
    for seed in 0..16u64 {
        let flipped = flip_bytes(&tsv, seed, 4);
        let read = graph_io::read_tsv_lossy(flipped.as_slice())
            .unwrap_or_else(|e| panic!("seed {seed}: lossy read aborted: {e}"));
        read.graph
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: recovered graph invalid: {e}"));
        // Conservation: every input line is either a parsed record or a
        // quarantined error (blank/comment lines aside — flips can create
        // those too, so only an upper bound holds on records).
        let lines = flipped
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .count();
        assert!(
            read.graph.num_edges() + read.errors.len() <= lines,
            "seed {seed}: more records+errors than lines"
        );
    }
}

// -------------------------------------------------------------- streaming

fn stream() -> Vec<Vec<(UserId, ItemId, u32)>> {
    let mut background = Vec::new();
    for u in 1000..2200u32 {
        background.push((UserId(u), ItemId(0), 1));
    }
    let mut batches = vec![background, Vec::new(), Vec::new(), Vec::new()];
    for u in 0..12u32 {
        for day in batches.iter_mut().take(4).skip(1) {
            for v in 1..12u32 {
                day.push((UserId(u), ItemId(v), 5));
            }
        }
        batches[1].push((UserId(u), ItemId(0), 1));
    }
    batches
}

#[test]
fn replayed_batches_leave_results_identical_to_clean_stream() {
    let batches = stream();
    let mut clean = StreamingDetector::new(RicdPipeline::new(RicdParams::default()));
    for (i, b) in batches.iter().enumerate() {
        clean.ingest_batch(i as u64, b);
    }
    // Replay every batch position in turn (redelivery keeps the original
    // sequence number), plus a triple-delivery of the last batch.
    for dup in 0..batches.len() {
        let mut faulty = StreamingDetector::new(RicdPipeline::new(RicdParams::default()));
        let delivered = replay_batch(&batches, dup);
        let mut seqs: Vec<u64> = (0..batches.len() as u64).collect();
        seqs.insert(dup + 1, dup as u64);
        for (s, b) in seqs.iter().zip(&delivered) {
            faulty.ingest_batch(*s, b);
        }
        assert_eq!(clean.groups(), faulty.groups(), "dup of batch {dup}");
        assert_eq!(
            clean.graph().num_edges(),
            faulty.graph().num_edges(),
            "dup of batch {dup} double-counted clicks"
        );
    }
}

#[test]
fn crash_resume_with_replay_matches_never_crashed() {
    let batches = stream();
    let mut steady = StreamingDetector::new(RicdPipeline::new(RicdParams::default()));
    for (i, b) in batches.iter().enumerate() {
        steady.ingest_batch(i as u64, b);
    }
    for cut in 1..batches.len() {
        // Run to the cut, checkpoint, "crash", restore — and have the
        // stream redeliver the batch before the cut (at-least-once).
        let mut before = StreamingDetector::new(RicdPipeline::new(RicdParams::default()));
        for (i, b) in batches[..cut].iter().enumerate() {
            before.ingest_batch(i as u64, b);
        }
        let ckpt = before.checkpoint();
        let json = serde_json::to_string(&ckpt).unwrap();
        drop(before);
        let restored: Checkpoint = serde_json::from_str(&json).unwrap();
        let mut resumed =
            StreamingDetector::restore(RicdPipeline::new(RicdParams::default()), restored);
        let replay = resumed.ingest_batch(cut as u64 - 1, &batches[cut - 1]);
        assert!(replay.replayed, "redelivered batch recognized");
        for (i, b) in batches.iter().enumerate().skip(cut) {
            resumed.ingest_batch(i as u64, b);
        }
        assert_eq!(steady.groups(), resumed.groups(), "cut {cut} diverged");
    }
}

// ------------------------------------------------------------------- CLI

fn ricd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ricd"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ricd-chaos-{}-{name}", std::process::id()));
    p
}

fn write_corrupt_tsv(path: &PathBuf) {
    let g = sample_graph();
    let mut tsv = Vec::new();
    graph_io::write_tsv(&g, &mut tsv).unwrap();
    // Splice garbage into the middle of the file.
    let mid = tsv.len() / 2;
    let pre = tsv[..mid].iter().rposition(|&b| b == b'\n').unwrap() + 1;
    let mut bad = tsv[..pre].to_vec();
    bad.extend_from_slice(b"this line is garbage\n");
    bad.extend_from_slice(&tsv[pre..]);
    std::fs::write(path, bad).unwrap();
}

#[test]
fn cli_corrupt_input_fails_strict_but_recovers_lossy() {
    let clicks = tmp("corrupt.tsv");
    write_corrupt_tsv(&clicks);

    let strict = ricd()
        .args(["detect", "--input", clicks.to_str().unwrap()])
        .output()
        .expect("ricd runs");
    assert_eq!(strict.status.code(), Some(1), "strict parse error exits 1");
    let err = String::from_utf8_lossy(&strict.stderr);
    assert!(err.contains("error:"), "{err}");

    let lossy = ricd()
        .args(["detect", "--input", clicks.to_str().unwrap(), "--lossy"])
        .output()
        .expect("ricd runs");
    assert_eq!(lossy.status.code(), Some(0), "lossy run succeeds");
    let err = String::from_utf8_lossy(&lossy.stderr);
    assert!(err.contains("quarantined 1 malformed line"), "{err}");

    let _ = std::fs::remove_file(&clicks);
}

#[test]
fn cli_deadline_degrades_with_warning_and_exit_zero() {
    let clicks = tmp("deadline.tsv");
    let g = sample_graph();
    let mut tsv = Vec::new();
    graph_io::write_tsv(&g, &mut tsv).unwrap();
    std::fs::write(&clicks, tsv).unwrap();

    let out = ricd()
        .args([
            "detect",
            "--input",
            clicks.to_str().unwrap(),
            "--deadline-ms",
            "0",
        ])
        .output()
        .expect("ricd runs");
    assert_eq!(out.status.code(), Some(0), "degraded run still exits 0");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning: degraded run"), "{err}");
    assert!(err.contains("deadline"), "{err}");

    let _ = std::fs::remove_file(&clicks);
}

#[test]
fn cli_usage_errors_exit_two() {
    for args in [
        vec!["detect"],                               // missing --input
        vec!["frobnicate"],                           // unknown command
        vec!["detect", "--input", "x", "--k1", "no"], // malformed flag value
    ] {
        let out = ricd().args(&args).output().expect("ricd runs");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("USAGE"), "usage shown for {args:?}: {err}");
    }
}

#[test]
fn cli_missing_file_exits_one() {
    let out = ricd()
        .args(["detect", "--input", "/nonexistent/clicks.tsv"])
        .output()
        .expect("ricd runs");
    assert_eq!(out.status.code(), Some(1));
}
