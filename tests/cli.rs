//! Integration tests of the `ricd` CLI binary: the generate → stats →
//! detect → eval round trip over real files, and the serve/client pair
//! over a loopback socket.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn ricd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ricd"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ricd-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_stats_detect_eval_round_trip() {
    let clicks = tmp("clicks.tsv");
    let truth = tmp("truth.json");
    let report = tmp("report.json");

    // generate
    let out = ricd()
        .args([
            "generate",
            "--output",
            clicks.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
            "--scale",
            "small",
            "--groups",
            "3",
            "--seed",
            "7",
        ])
        .output()
        .expect("ricd generate runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(clicks.exists() && truth.exists());

    // stats
    let out = ricd()
        .args(["stats", "--input", clicks.to_str().unwrap()])
        .output()
        .expect("ricd stats runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total clicks"), "{text}");
    assert!(text.contains("pareto"), "{text}");

    // detect
    let out = ricd()
        .args([
            "detect",
            "--input",
            clicks.to_str().unwrap(),
            "--output",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("ricd detect runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("group 1:"), "{text}");
    let json = std::fs::read_to_string(&report).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(parsed["groups"].as_array().is_some_and(|g| !g.is_empty()));

    // eval
    let out = ricd()
        .args([
            "eval",
            "--input",
            clicks.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
            "--method",
            "RICD",
        ])
        .output()
        .expect("ricd eval runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("RICD"), "{text}");
    assert!(text.contains("precision"), "{text}");

    for p in [clicks, truth, report] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn deterministic_generation_under_seed() {
    let a = tmp("a.tsv");
    let b = tmp("b.tsv");
    for path in [&a, &b] {
        let out = ricd()
            .args([
                "generate",
                "--output",
                path.to_str().unwrap(),
                "--scale",
                "tiny",
                "--seed",
                "99",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap()
    );
    let _ = std::fs::remove_file(a);
    let _ = std::fs::remove_file(b);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = ricd().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn help_prints_usage() {
    let out = ricd().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn missing_required_flag_is_an_error() {
    let out = ricd().arg("stats").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

/// Spawns `ricd serve` with the given extra flags and scrapes the bound
/// address from its first stdout line.
fn spawn_serve(extra: &[&str]) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = ricd()
        .arg("serve")
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("ricd serve spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("serve announces itself");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .trim()
        .to_string();
    (child, addr, stdout)
}

#[test]
fn serve_oneshot_answers_one_client_and_exits_cleanly() {
    let (mut child, addr, _stdout) = spawn_serve(&["--oneshot"]);

    let out = ricd()
        .args(["client", "metrics", "--addr", &addr])
        .output()
        .expect("ricd client runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("serve.connections_accepted"), "{json}");
    assert!(json.contains("serve.batches"), "{json}");

    // The one connection closed, so the oneshot server drains and exits 0.
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exit status: {status:?}");
}

#[test]
fn serve_client_ingest_query_shutdown_flow() {
    let clicks = tmp("serve-clicks.tsv");
    let truth = tmp("serve-truth.json");
    let out = ricd()
        .args([
            "generate",
            "--output",
            clicks.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
            "--scale",
            "tiny",
            "--groups",
            "2",
            "--seed",
            "11",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let parsed: fake_click_detection::datagen::GroundTruth =
        serde_json::from_str(&std::fs::read_to_string(&truth).unwrap()).unwrap();
    let worker = parsed.groups[0].workers[0].0;

    let (mut child, addr, _stdout) = spawn_serve(&["--swap-every", "2"]);

    let out = ricd()
        .args([
            "client",
            "ingest",
            "--addr",
            &addr,
            "--input",
            clicks.to_str().unwrap(),
            "--batch",
            "2000",
        ])
        .output()
        .expect("client ingest runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Detection is asynchronous: poll risk queries until the planted worker
    // surfaces in a published view.
    let worker_flag = worker.to_string();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let out = ricd()
            .args(["client", "query", "--addr", &addr, "--user", &worker_flag])
            .output()
            .expect("client query runs");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        if text.contains("FLAGGED") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "planted worker never flagged; last reply: {text}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    let out = ricd()
        .args(["client", "shutdown", "--addr", &addr])
        .output()
        .expect("client shutdown runs");
    assert!(out.status.success());
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exit status: {status:?}");

    for p in [clicks, truth] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn client_usage_errors_exit_2_before_any_connection() {
    // Unknown operation.
    let out = ricd()
        .args(["client", "frobnicate", "--addr", "127.0.0.1:1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown client op"));

    // Missing --addr.
    let out = ricd().args(["client", "metrics"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr"));

    // Missing operation entirely.
    let out = ricd().arg("client").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn client_connection_refused_exits_1() {
    // Port 1 on loopback: nothing listens there in the test sandbox.
    let out = ricd()
        .args(["client", "metrics", "--addr", "127.0.0.1:1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn serve_rejects_malformed_frames_but_keeps_the_connection() {
    use fake_click_detection::serve::{Request, Response, MAX_FRAME_LEN};
    use std::io::{Read, Write};

    let (mut child, addr, _stdout) = spawn_serve(&["--oneshot"]);
    let mut sock = std::net::TcpStream::connect(&addr).expect("raw connect");

    // A well-framed but non-JSON payload: the server answers with an Error
    // frame and keeps the connection open.
    let garbage = b"definitely not json";
    sock.write_all(&(garbage.len() as u32).to_be_bytes())
        .unwrap();
    sock.write_all(garbage).unwrap();
    let mut len = [0u8; 4];
    sock.read_exact(&mut len).expect("error frame length");
    let n = u32::from_be_bytes(len) as usize;
    assert!(n <= MAX_FRAME_LEN as usize);
    let mut payload = vec![0u8; n];
    sock.read_exact(&mut payload).expect("error frame payload");
    let resp: Response =
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).expect("reply is wire JSON");
    assert!(
        matches!(resp, Response::Error { .. }),
        "malformed frame must be answered with Error, got {resp:?}"
    );

    // Same connection still serves a valid request afterwards.
    let req = serde_json::to_string(&Request::Shutdown)
        .unwrap()
        .into_bytes();
    sock.write_all(&(req.len() as u32).to_be_bytes()).unwrap();
    sock.write_all(&req).unwrap();
    sock.read_exact(&mut len).expect("shutdown reply length");
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    sock.read_exact(&mut payload)
        .expect("shutdown reply payload");
    let resp: Response = serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(matches!(resp, Response::ShuttingDown), "{resp:?}");

    drop(sock);
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exit status: {status:?}");
}

#[test]
fn detect_accepts_custom_parameters() {
    let clicks = tmp("params.tsv");
    let out = ricd()
        .args([
            "generate",
            "--output",
            clicks.to_str().unwrap(),
            "--scale",
            "tiny",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = ricd()
        .args([
            "detect",
            "--input",
            clicks.to_str().unwrap(),
            "--k1",
            "5",
            "--k2",
            "5",
            "--alpha",
            "0.9",
            "--t-click",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Invalid alpha rejected.
    let out = ricd()
        .args([
            "detect",
            "--input",
            clicks.to_str().unwrap(),
            "--alpha",
            "1.5",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(clicks);
}

#[test]
fn stream_replay_round_trip_writes_report_and_metrics() {
    let report = tmp("stream-report.json");
    let metrics = tmp("stream-metrics.json");
    let out = ricd()
        .args([
            "stream",
            "--scenario",
            "burst",
            "--out",
            report.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--metrics-count-only",
        ])
        .output()
        .expect("ricd stream runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("batches-to-flag"), "{text}");
    assert!(text.contains("final: precision"), "{text}");

    // The report round-trips as JSON with per-campaign latency numbers.
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
    let campaigns = json["campaigns"].as_array().unwrap();
    assert!(!campaigns.is_empty());
    assert!(campaigns[0]["batches_to_flag"].as_u64().is_some());
    assert!(campaigns[0]["ticks_to_flag"].as_u64().is_some());

    // The metrics snapshot carries the stream.* family.
    let snap = std::fs::read_to_string(&metrics).unwrap();
    assert!(snap.contains("stream.detects"), "{snap}");
    assert!(snap.contains("stream.time_to_flag_batches"), "{snap}");

    // Windowed replay over the slow drip also flags (the acceptance gate).
    let out = ricd()
        .args(["stream", "--scenario", "slow-drip", "--window", "1000"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("batches-to-flag"), "{text}");
    assert!(!text.contains("NOT FLAGGED"), "{text}");

    let _ = std::fs::remove_file(report);
    let _ = std::fs::remove_file(metrics);
}

#[test]
fn stream_flag_validation_exits_2() {
    // Unknown scenario.
    let out = ricd()
        .args(["stream", "--scenario", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --scenario"));

    // Zero-width window rejected by WindowConfig validation.
    let out = ricd().args(["stream", "--window", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Flag fraction outside (0, 1].
    let out = ricd()
        .args(["stream", "--flag-fraction", "1.5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Dangling value flag must not silently drop the report.
    let out = ricd().args(["stream", "--out"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn stream_unwritable_output_exits_1() {
    let out = ricd()
        .args(["stream", "--out", "/nonexistent-dir/report.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}
