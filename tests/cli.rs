//! Integration tests of the `ricd` CLI binary: the generate → stats →
//! detect → eval round trip over real files.

use std::path::PathBuf;
use std::process::Command;

fn ricd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ricd"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ricd-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_stats_detect_eval_round_trip() {
    let clicks = tmp("clicks.tsv");
    let truth = tmp("truth.json");
    let report = tmp("report.json");

    // generate
    let out = ricd()
        .args([
            "generate",
            "--output",
            clicks.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
            "--scale",
            "small",
            "--groups",
            "3",
            "--seed",
            "7",
        ])
        .output()
        .expect("ricd generate runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(clicks.exists() && truth.exists());

    // stats
    let out = ricd()
        .args(["stats", "--input", clicks.to_str().unwrap()])
        .output()
        .expect("ricd stats runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total clicks"), "{text}");
    assert!(text.contains("pareto"), "{text}");

    // detect
    let out = ricd()
        .args([
            "detect",
            "--input",
            clicks.to_str().unwrap(),
            "--output",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("ricd detect runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("group 1:"), "{text}");
    let json = std::fs::read_to_string(&report).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(parsed["groups"].as_array().is_some_and(|g| !g.is_empty()));

    // eval
    let out = ricd()
        .args([
            "eval",
            "--input",
            clicks.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
            "--method",
            "RICD",
        ])
        .output()
        .expect("ricd eval runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("RICD"), "{text}");
    assert!(text.contains("precision"), "{text}");

    for p in [clicks, truth, report] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn deterministic_generation_under_seed() {
    let a = tmp("a.tsv");
    let b = tmp("b.tsv");
    for path in [&a, &b] {
        let out = ricd()
            .args([
                "generate",
                "--output",
                path.to_str().unwrap(),
                "--scale",
                "tiny",
                "--seed",
                "99",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap()
    );
    let _ = std::fs::remove_file(a);
    let _ = std::fs::remove_file(b);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = ricd().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn help_prints_usage() {
    let out = ricd().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn missing_required_flag_is_an_error() {
    let out = ricd().arg("stats").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn detect_accepts_custom_parameters() {
    let clicks = tmp("params.tsv");
    let out = ricd()
        .args([
            "generate",
            "--output",
            clicks.to_str().unwrap(),
            "--scale",
            "tiny",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = ricd()
        .args([
            "detect",
            "--input",
            clicks.to_str().unwrap(),
            "--k1",
            "5",
            "--k2",
            "5",
            "--alpha",
            "0.9",
            "--t-click",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Invalid alpha rejected.
    let out = ricd()
        .args([
            "detect",
            "--input",
            clicks.to_str().unwrap(),
            "--alpha",
            "1.5",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(clicks);
}
