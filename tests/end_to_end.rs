//! Cross-crate integration tests: datagen → detectors → evaluation, the
//! full reproduction path.

use fake_click_detection::eval::figures;
use fake_click_detection::prelude::*;
use std::time::Duration;

fn dataset() -> SyntheticDataset {
    // The canonical evaluation mix at test scale: heterogeneous group
    // sizes and partial target coverage (see AttackConfig::evaluation).
    let attack = AttackConfig {
        num_groups: 4,
        ..AttackConfig::evaluation()
    };
    generate(&DatasetConfig::small(), &attack).expect("valid configs")
}

#[test]
fn ricd_leads_the_fig8_comparison() {
    // The paper's Fig 8a claims, in their falsifiable form:
    // * RICD beats LPA on precision at comparable recall (paper: +18%);
    // * RICD beats FRAUDAR on recall at competitive precision (paper: +35%);
    // * RICD crushes the naive algorithm;
    // * no baseline beats RICD's F1 by more than a rounding sliver (at this
    //   scale the screening module is near-oracle given coverage, so the
    //   strong community baselines tie RICD — see EXPERIMENTS.md).
    let ds = dataset();
    let cfg = MethodConfig {
        copycatch_budget: Duration::from_secs(2),
        ..MethodConfig::default()
    };
    let outcomes = figures::fig8(&ds.graph, &ds.truth, &cfg);
    let get = |m: Method| {
        outcomes
            .iter()
            .find(|o| o.method == m)
            .unwrap_or_else(|| panic!("{} in lineup", m.name()))
    };
    let ricd = get(Method::Ricd);
    assert!(ricd.eval.f1 > 0.6, "RICD F1 {:.3}", ricd.eval.f1);

    let lpa = get(Method::Lpa);
    assert!(
        ricd.eval.precision > lpa.eval.precision,
        "RICD precision {:.3} vs LPA {:.3}",
        ricd.eval.precision,
        lpa.eval.precision
    );
    assert!(
        ricd.eval.recall + 0.1 >= lpa.eval.recall,
        "comparable recall"
    );

    let fraudar = get(Method::Fraudar);
    assert!(
        ricd.eval.recall > fraudar.eval.recall,
        "RICD recall {:.3} vs FRAUDAR {:.3}",
        ricd.eval.recall,
        fraudar.eval.recall
    );

    let naive = get(Method::Naive);
    assert!(ricd.eval.f1 > naive.eval.f1 + 0.3, "naive far behind");

    for o in &outcomes {
        assert!(
            ricd.eval.f1 + 0.02 >= o.eval.f1,
            "{} (F1 {:.3}) decisively beat RICD (F1 {:.3})",
            o.name,
            o.eval.f1,
            ricd.eval.f1
        );
    }
}

#[test]
fn ricd_precision_and_recall_are_strong() {
    let ds = dataset();
    let cfg = MethodConfig::default();
    let eval = evaluate(&cfg.run(Method::Ricd, &ds.graph), &ds.truth);
    assert!(eval.precision > 0.7, "precision {:.3}", eval.precision);
    assert!(eval.recall > 0.5, "recall {:.3}", eval.recall);
}

#[test]
fn screening_ablation_matches_table6_shape() {
    let ds = dataset();
    let cfg = MethodConfig::default();
    let rows = figures::table6(&ds.graph, &ds.truth, &cfg);
    // Precision rises RICD-UI → RICD-I → RICD; recall never rises; full
    // RICD has the best F1 of the three.
    assert!(rows[0].eval.precision <= rows[1].eval.precision + 1e-9);
    assert!(rows[1].eval.precision <= rows[2].eval.precision + 1e-9);
    assert!(rows[0].eval.recall + 1e-9 >= rows[2].eval.recall);
    assert!(rows[2].eval.f1 >= rows[0].eval.f1);
    assert!(rows[2].eval.f1 >= rows[1].eval.f1);
}

#[test]
fn clean_dataset_produces_no_detections() {
    // No planted attacks → RICD should stay (close to) silent. The organic
    // generator can still produce rare dense pockets, so allow a sliver.
    let ds = generate(&DatasetConfig::small(), &AttackConfig::none()).unwrap();
    let cfg = MethodConfig::default();
    let r = cfg.run(Method::Ricd, &ds.graph);
    assert!(
        r.num_output() <= 5,
        "clean data produced {} abnormal nodes",
        r.num_output()
    );
}

#[test]
fn seeded_detection_recovers_the_seeded_group() {
    use fake_click_detection::core::detect::Seeds;
    use fake_click_detection::core::pipeline::RicdPipeline;

    let ds = dataset();
    let g0 = &ds.truth.groups[0];
    let seeds = Seeds {
        users: vec![g0.workers[0]],
        items: vec![],
    };
    let r = RicdPipeline::new(RicdParams::default())
        .with_seeds(seeds)
        .run(&ds.graph);
    let found = r.suspicious_users();
    let hits = g0.workers.iter().filter(|w| found.contains(w)).count();
    assert!(
        hits * 10 >= g0.workers.len() * 8,
        "seeded run recovered {hits}/{} of the seeded group",
        g0.workers.len()
    );
}

#[test]
fn table_and_graph_forms_agree() {
    use fake_click_detection::table::ClickTable;
    let ds = dataset();
    let table = ds.table();
    assert_eq!(table.num_rows(), ds.graph.num_edges());
    assert_eq!(table.total_clicks(), ds.graph.total_clicks());
    let g2 = table.to_graph_with_capacity(ds.graph.num_users(), ds.graph.num_items());
    let a: Vec<_> = ds.graph.edges().collect();
    let b: Vec<_> = g2.edges().collect();
    assert_eq!(a, b);
    let t2 = ClickTable::from_graph(&g2);
    assert_eq!(table, t2);
}

#[test]
fn graph_serialization_preserves_detection() {
    use fake_click_detection::graph::io;
    let ds = dataset();
    let bytes = io::to_bytes(&ds.graph);
    let g2 = io::from_bytes(bytes).expect("round trip");
    let cfg = MethodConfig::default();
    let r1 = cfg.run(Method::Ricd, &ds.graph);
    let r2 = cfg.run(Method::Ricd, &g2);
    assert_eq!(r1.suspicious_users(), r2.suspicious_users());
    assert_eq!(r1.suspicious_items(), r2.suspicious_items());
}

#[test]
fn campaign_case_study_detects_before_the_end() {
    let campaign = CampaignConfig {
        dataset: DatasetConfig::tiny(),
        ..CampaignConfig::default()
    };
    let cfg = MethodConfig::default();
    let report = figures::fig10(&campaign, &cfg, 0.5).expect("simulates");
    let day = report.detection_day.expect("detected");
    assert!(day <= campaign.num_days);
    // Cleaning restores normal traffic to base level.
    let post = report
        .cleaned
        .iter()
        .find(|d| d.day == day + 1)
        .expect("day after detection");
    assert_eq!(post.fake_clicks, 0);
}

#[test]
fn feedback_loop_recovers_a_subtle_attack() {
    use fake_click_detection::core::identify::{FeedbackConfig, FeedbackLoop};
    use fake_click_detection::core::pipeline::RicdPipeline;

    // A subtler attack: fewer workers with partial coverage, invisible at
    // the default (k=10, alpha=1.0) operating point.
    let attack = AttackConfig {
        num_groups: 2,
        workers_per_group: 9,
        targets_per_group: 9,
        target_coverage: 0.9,
        ..AttackConfig::default()
    };
    let ds = generate(&DatasetConfig::small(), &attack).unwrap();
    let pipeline = RicdPipeline::new(RicdParams::default());

    let strict = pipeline.run(&ds.graph);
    let lp = FeedbackLoop::new(FeedbackConfig {
        expectation: 10,
        max_iterations: 8,
    });
    let (relaxed, params_used) = lp.run(RicdParams::default(), |p| pipeline.run_with(&ds.graph, p));
    assert!(
        relaxed.num_output() >= strict.num_output(),
        "relaxation cannot shrink output"
    );
    assert!(
        relaxed.num_output() >= 10,
        "feedback loop reached the expectation (got {}, params {:?})",
        relaxed.num_output(),
        params_used
    );
}
