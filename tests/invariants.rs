//! Property-based invariants of the full pipeline, over randomized dataset
//! and attack configurations.

use fake_click_detection::prelude::*;
use proptest::prelude::*;

/// Random but valid generator configs (kept tiny for test speed).
fn configs() -> impl Strategy<Value = (DatasetConfig, AttackConfig)> {
    (
        200usize..800, // users
        50usize..150,  // items
        0usize..3,     // groups
        10usize..20,   // workers per group
        10usize..14,   // targets per group
        0.8f64..=1.0,  // coverage
        any::<bool>(), // experienced workers
        0u64..1000,    // seeds
    )
        .prop_map(
            |(users, items, groups, workers, targets, coverage, exp, seed)| {
                let d = DatasetConfig {
                    num_users: users,
                    num_items: items,
                    max_user_degree: 40,
                    num_communities: 2,
                    community_users: (10, 15),
                    community_items: (5, 8),
                    num_flash_items: 3,
                    num_hunter_rings: 1,
                    hunter_items: (3, 5),
                    seed,
                    ..DatasetConfig::default()
                };
                let a = AttackConfig {
                    num_groups: groups,
                    workers_per_group: workers,
                    targets_per_group: targets,
                    target_coverage: coverage,
                    experienced_workers: exp,
                    seed: seed ^ 0xabcd,
                    ..AttackConfig::default()
                };
                (d, a)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Output node ids always exist in the graph, groups are internally
    /// sorted, and no ridden hot item leaks into the suspicious item set.
    #[test]
    fn output_is_well_formed((d, a) in configs()) {
        let ds = generate(&d, &a).unwrap();
        let r = RicdPipeline::new(RicdParams::default()).run(&ds.graph);
        for g in &r.groups {
            for u in &g.users {
                prop_assert!(u.index() < ds.graph.num_users());
            }
            for v in &g.items {
                prop_assert!(v.index() < ds.graph.num_items());
                prop_assert!(!g.ridden_hot_items.contains(v));
            }
            prop_assert!(g.users.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(g.items.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(g.users.len() >= 2, "groups have at least two workers");
            prop_assert!(!g.items.is_empty());
        }
    }

    /// Determinism: same configs → identical output.
    #[test]
    fn pipeline_is_deterministic((d, a) in configs()) {
        let ds1 = generate(&d, &a).unwrap();
        let ds2 = generate(&d, &a).unwrap();
        let r1 = RicdPipeline::new(RicdParams::default()).run(&ds1.graph);
        let r2 = RicdPipeline::new(RicdParams::default()).run(&ds2.graph);
        prop_assert_eq!(r1.groups, r2.groups);
    }

    /// Screening monotonicity (the Table VI mechanism): each added screening
    /// step can only shrink the output node set.
    #[test]
    fn screening_shrinks_output((d, a) in configs()) {
        let ds = generate(&d, &a).unwrap();
        let cfg = MethodConfig::default();
        let ui = cfg.run(Method::RicdUi, &ds.graph).num_output();
        let i = cfg.run(Method::RicdI, &ds.graph).num_output();
        let full = cfg.run(Method::Ricd, &ds.graph).num_output();
        prop_assert!(ui >= i, "RICD-UI {ui} >= RICD-I {i}");
        prop_assert!(i >= full, "RICD-I {i} >= RICD {full}");
    }

    /// Every suspicious user in the output actually clicked at least one of
    /// the suspicious items heavily (the screening contract).
    #[test]
    fn output_users_have_heavy_evidence((d, a) in configs()) {
        let ds = generate(&d, &a).unwrap();
        let params = RicdParams::default();
        let r = RicdPipeline::new(params).run(&ds.graph);
        for g in &r.groups {
            for &u in &g.users {
                let heavy = g.items.iter().any(|&v| {
                    ds.graph.clicks(u, v).is_some_and(|c| c >= params.t_click)
                });
                prop_assert!(heavy, "{u} has no heavy click on its group's items");
            }
        }
    }

    /// Risk ranking covers exactly the output node sets and descends.
    #[test]
    fn ranking_is_consistent((d, a) in configs()) {
        let ds = generate(&d, &a).unwrap();
        let r = RicdPipeline::new(RicdParams::default()).run(&ds.graph);
        prop_assert_eq!(r.ranked_users.len(), r.suspicious_users().len());
        prop_assert_eq!(r.ranked_items.len(), r.suspicious_items().len());
        prop_assert!(r.ranked_users.windows(2).all(|w| w[0].1 >= w[1].1));
        prop_assert!(r.ranked_items.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    /// Evaluation bounds: precision/recall/F1 in [0, 1]; perfect output on
    /// an attack-free dataset is undefined-but-zero, never NaN.
    #[test]
    fn evaluation_is_bounded((d, a) in configs()) {
        let ds = generate(&d, &a).unwrap();
        let r = RicdPipeline::new(RicdParams::default()).run(&ds.graph);
        let e = evaluate(&r, &ds.truth);
        for x in [e.precision, e.recall, e.f1] {
            prop_assert!((0.0..=1.0).contains(&x), "metric {x} out of range");
            prop_assert!(!x.is_nan());
        }
    }
}
