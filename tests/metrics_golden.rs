//! Golden-snapshot test for the observability layer.
//!
//! Runs the full RICD pipeline on a seeded tiny dataset with a deterministic
//! clock and a fixed-width worker pool, then pins the exact count-mode
//! [`MetricsSnapshot`] JSON. Any change to what the pipeline records — a new
//! counter, a renamed span, a different partitioning — shows up as a diff
//! against `tests/data/metrics_golden.json` and must be reviewed.
//!
//! To regenerate the golden file after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test metrics_golden
//! ```
//!
//! [`MetricsSnapshot`]: fake_click_detection::obs::MetricsSnapshot

use fake_click_detection::datagen::{generate, AttackConfig, DatasetConfig};
use fake_click_detection::engine::WorkerPool;
use fake_click_detection::obs::MetricsRegistry;
use fake_click_detection::prelude::*;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/metrics_golden.json"
);

/// One deterministic end-to-end run: seeded dataset, manual clock (never
/// advanced, so every duration is zero even before the count-only
/// projection), and exactly 4 workers so partition counts don't vary with
/// the host's core count.
fn golden_snapshot_json() -> String {
    let ds = generate(&DatasetConfig::tiny(), &AttackConfig::evaluation()).expect("generate");
    let (registry, _clock) = MetricsRegistry::deterministic();
    let pipeline = RicdPipeline::new(RicdParams::default())
        .with_pool(WorkerPool::new(4))
        .with_metrics(registry.clone());
    let result = pipeline.run(&ds.graph);
    assert!(
        matches!(result.status, RunStatus::Complete),
        "golden run unexpectedly degraded: {:?}",
        result.status
    );
    let snap = registry.snapshot().count_only();
    let mut json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    json.push('\n');
    json
}

#[test]
fn count_mode_snapshot_matches_golden_file() {
    let json = golden_snapshot_json();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        json, expected,
        "count-mode snapshot drifted from {GOLDEN_PATH}; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn repeat_runs_are_byte_identical() {
    assert_eq!(
        golden_snapshot_json(),
        golden_snapshot_json(),
        "two identical deterministic runs must serialize identically"
    );
}
