//! Golden-snapshot test for the observability layer.
//!
//! Runs the full RICD pipeline on a seeded tiny dataset with a deterministic
//! clock and a fixed-width worker pool, then pins the exact count-mode
//! [`MetricsSnapshot`] JSON. Any change to what the pipeline records — a new
//! counter, a renamed span, a different partitioning — shows up as a diff
//! against `tests/data/metrics_golden.json` and must be reviewed.
//!
//! To regenerate the golden file after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test metrics_golden
//! ```
//!
//! [`MetricsSnapshot`]: fake_click_detection::obs::MetricsSnapshot

use fake_click_detection::datagen::{generate, AttackConfig, DatasetConfig};
use fake_click_detection::engine::WorkerPool;
use fake_click_detection::obs::MetricsRegistry;
use fake_click_detection::prelude::*;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/metrics_golden.json"
);

/// One deterministic end-to-end run: seeded dataset, manual clock (never
/// advanced, so every duration is zero even before the count-only
/// projection), and exactly 4 workers so partition counts don't vary with
/// the host's core count.
fn golden_snapshot_json() -> String {
    let ds = generate(&DatasetConfig::tiny(), &AttackConfig::evaluation()).expect("generate");
    let (registry, _clock) = MetricsRegistry::deterministic();
    let pipeline = RicdPipeline::new(RicdParams::default())
        .with_pool(WorkerPool::new(4))
        .with_metrics(registry.clone());
    let result = pipeline.run(&ds.graph);
    assert!(
        matches!(result.status, RunStatus::Complete),
        "golden run unexpectedly degraded: {:?}",
        result.status
    );
    let snap = registry.snapshot().count_only();
    let mut json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    json.push('\n');
    json
}

const SERVE_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/metrics_serve_golden.json"
);

/// One deterministic serving run, driving [`ServeState`] synchronously (no
/// sockets, no background worker — the state machine is the thing under
/// observation): a seeded world streamed in fixed batches with one
/// deliberate replay, then a drain-flush and a checkpoint, pinning every
/// `serve.*` and `stream.*` counter the daemon would emit.
///
/// [`ServeState`]: fake_click_detection::serve::ServeState
fn serve_snapshot_json() -> String {
    use fake_click_detection::serve::{ServeConfig, ServeState};

    let ds = generate(&DatasetConfig::tiny(), &AttackConfig::evaluation()).expect("generate");
    let (registry, _clock) = MetricsRegistry::deterministic();
    let pipeline = RicdPipeline::new(RicdParams::default())
        .with_pool(WorkerPool::new(4))
        .with_metrics(registry.clone());
    let mut state = ServeState::new(
        ServeConfig {
            swap_every_batches: 4,
            ..ServeConfig::default()
        },
        pipeline,
    );

    let records: Vec<_> = ds.graph.edges().collect();
    let batches: Vec<&[_]> = records.chunks(500).collect();
    for (seq, batch) in batches.iter().enumerate() {
        state.ingest(seq as u64, batch);
    }
    // An at-least-once redelivery: dropped, counted, and invisible to the
    // view gauges.
    state.ingest(0, batches[0]);
    // One timestamped batch through the timed-ingest path: exercises the
    // serve.timed_* counters and the event-time high-water gauge.
    let timed: Vec<_> = batches[0]
        .iter()
        .map(|&(u, v, c)| (u, v, c, 1_000u64))
        .collect();
    state.ingest_timed(batches.len() as u64, &timed);
    state.flush();
    let _ = state.checkpoint();

    let snap = registry.snapshot().count_only();
    let mut json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    json.push('\n');
    json
}

const STREAM_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/metrics_stream_golden.json"
);

/// One deterministic scenario replay through the windowed streaming
/// detector: the burst preset under a sliding window plus decay, with the
/// pool pinned at 4 workers, pinning the full `stream.*` family the
/// temporal subsystem emits — window gauges, eviction counters, the
/// detect cadence, and the time-to-flag histogram.
fn stream_snapshot_json() -> String {
    use fake_click_detection::core::temporal::WindowConfig;
    use fake_click_detection::eval::temporal::{replay_timeline, StreamEvalConfig};

    let timeline = build_timeline(&ScenarioConfig::burst()).expect("burst scenario builds");
    let (registry, _clock) = MetricsRegistry::deterministic();
    let mut cfg = StreamEvalConfig::new(RicdParams::default());
    cfg.window = WindowConfig {
        window: Some(600),
        half_life: Some(400),
        detect_every: 2,
    };
    cfg.workers = Some(4);
    let report = replay_timeline(&timeline, &cfg, &registry).expect("replay completes");
    assert!(report.batches > 0);

    let snap = registry.snapshot().count_only();
    let mut json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    json.push('\n');
    json
}

fn assert_matches_golden(json: &str, path: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, json).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden file exists (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        json, expected,
        "count-mode snapshot drifted from {path}; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn count_mode_snapshot_matches_golden_file() {
    assert_matches_golden(&golden_snapshot_json(), GOLDEN_PATH);
}

#[test]
fn serve_count_mode_snapshot_matches_golden_file() {
    let json = serve_snapshot_json();
    // The serving layer's own instrumentation must be present before pinning.
    for name in [
        "serve.batches",
        "serve.records",
        "serve.swaps",
        "serve.view_groups",
        "serve.epoch",
    ] {
        assert!(json.contains(name), "snapshot lost {name}:\n{json}");
    }
    assert_matches_golden(&json, SERVE_GOLDEN_PATH);
}

#[test]
fn stream_count_mode_snapshot_matches_golden_file() {
    let json = stream_snapshot_json();
    // The temporal subsystem's own instrumentation must be present before
    // pinning.
    for name in [
        "stream.batches_ingested",
        "stream.evicted_records",
        "stream.detects",
        "stream.detect_skipped",
        "stream.window_records",
        "stream.time_to_flag_batches",
    ] {
        assert!(json.contains(name), "snapshot lost {name}:\n{json}");
    }
    assert_matches_golden(&json, STREAM_GOLDEN_PATH);
}

#[test]
fn repeat_runs_are_byte_identical() {
    assert_eq!(
        golden_snapshot_json(),
        golden_snapshot_json(),
        "two identical deterministic runs must serialize identically"
    );
    assert_eq!(
        serve_snapshot_json(),
        serve_snapshot_json(),
        "two identical deterministic serving runs must serialize identically"
    );
    assert_eq!(
        stream_snapshot_json(),
        stream_snapshot_json(),
        "two identical deterministic stream replays must serialize identically"
    );
}
