//! Differential properties of the windowed streaming detector.
//!
//! The load-bearing equivalence: with an **infinite window and no decay**,
//! streaming a timeline's records through [`WindowedDetector`] — in *any*
//! batch chunking and *any* record order — must produce exactly the
//! one-shot batch result over the cumulative graph: identical flagged
//! sets AND identical risk scores. That is what makes the windowed mode a
//! strict generalization of offline detection rather than a sibling with
//! drift.
//!
//! Plus the recovery property: a checkpoint taken mid-stream, restored
//! into a fresh detector and fed the remaining batches, must land on the
//! exact same result as the uninterrupted run.

use fake_click_detection::core::temporal::TimedClick;
use fake_click_detection::prelude::*;
use proptest::prelude::*;

/// Randomized-but-valid temporal scenarios, derived from the burst preset
/// so detectability is guaranteed while timings, churn, and seeds vary.
fn scenarios() -> impl Strategy<Value = ScenarioConfig> {
    (
        0u64..1_000,   // seed
        200u64..400,   // campaign start
        50u64..200,    // ramp length
        1usize..3,     // churn cohorts
        any::<bool>(), // flash sale overlaps the campaign or not
    )
        .prop_map(|(seed, start, ramp, cohorts, overlap)| {
            let mut cfg = ScenarioConfig::burst();
            cfg.seed = 0xfeed_0000 ^ seed;
            let c = &mut cfg.campaigns[0];
            c.start = start;
            c.ramp = ramp;
            c.stop = (start + ramp + 200).min(cfg.horizon);
            c.churn_cohorts = cohorts;
            cfg.flash_sales[0].start = if overlap { start } else { 700 };
            cfg
        })
}

/// Deterministic xorshift shuffle (proptest drives the seed).
fn shuffle<T>(v: &mut [T], mut state: u64) {
    state |= 1;
    for i in (1..v.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        v.swap(i, (state % (i as u64 + 1)) as usize);
    }
}

/// Re-chunks `records` into batches of pseudo-random sizes.
fn rechunk(records: &[TimedClick], mut state: u64) -> Vec<Vec<TimedClick>> {
    state |= 1;
    let mut out = Vec::new();
    let mut rest = records;
    while !rest.is_empty() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let n = 1 + (state % 700) as usize;
        let (head, tail) = rest.split_at(n.min(rest.len()));
        out.push(head.to_vec());
        rest = tail;
    }
    out
}

/// The one-shot batch result over the timeline's cumulative graph.
fn one_shot(tl: &Timeline) -> DetectionResult {
    let mut b = GraphBuilder::new();
    b.extend(tl.all_untimed());
    RicdPipeline::new(RicdParams::default()).run(&b.build())
}

/// An infinite-window detector that only detects on demand, so each
/// property costs one pipeline run, not one per batch.
fn lazy_detector() -> WindowedDetector {
    WindowedDetector::new(
        RicdPipeline::new(RicdParams::default()),
        WindowConfig {
            detect_every: u64::MAX,
            ..WindowConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Infinite-window streaming over an arbitrarily shuffled, arbitrarily
    /// re-chunked record stream equals one-shot batch detection exactly:
    /// flagged sets and risk scores.
    #[test]
    fn infinite_window_stream_equals_one_shot(
        cfg in scenarios(),
        shuffle_seed in any::<u64>(),
        chunk_seed in any::<u64>(),
    ) {
        let tl = build_timeline(&cfg).unwrap();
        let batch = one_shot(&tl);

        let mut records: Vec<TimedClick> = tl
            .batches
            .iter()
            .flat_map(|b| b.records.iter().map(|r| r.wire()))
            .collect();
        shuffle(&mut records, shuffle_seed);

        let mut det = lazy_detector();
        for (seq, chunk) in rechunk(&records, chunk_seed).iter().enumerate() {
            det.ingest_batch(seq as u64, chunk);
        }
        let streamed = det.result().clone();

        prop_assert_eq!(streamed.suspicious_users(), batch.suspicious_users());
        prop_assert_eq!(streamed.suspicious_items(), batch.suspicious_items());
        prop_assert_eq!(&streamed.ranked_users, &batch.ranked_users);
        prop_assert_eq!(&streamed.ranked_items, &batch.ranked_items);
        prop_assert_eq!(&streamed.groups, &batch.groups);
    }

    /// A checkpoint taken mid-stream and resumed into a fresh detector
    /// converges on the uninterrupted run's exact result — same flagged
    /// sets, same scores, same window bookkeeping.
    #[test]
    fn checkpoint_resume_mid_window_is_exact(
        cfg in scenarios(),
        cut_frac in 0.1f64..0.9,
    ) {
        let tl = build_timeline(&cfg).unwrap();
        let chunks: Vec<Vec<TimedClick>> = tl
            .batches
            .iter()
            .map(|b| b.records.iter().map(|r| r.wire()).collect())
            .collect();
        let cut = ((chunks.len() as f64 * cut_frac) as usize).clamp(1, chunks.len() - 1);

        let mut uncut = lazy_detector();
        let mut first = lazy_detector();
        for (seq, chunk) in chunks.iter().enumerate() {
            uncut.ingest_batch(seq as u64, chunk);
            if seq < cut {
                first.ingest_batch(seq as u64, chunk);
            }
        }
        let ckpt = first.checkpoint();
        let mut resumed = WindowedDetector::restore(
            RicdPipeline::new(RicdParams::default()),
            WindowConfig {
                detect_every: u64::MAX,
                ..WindowConfig::default()
            },
            ckpt,
        )
        .unwrap();
        for (seq, chunk) in chunks.iter().enumerate().skip(cut) {
            resumed.ingest_batch(seq as u64, chunk);
        }

        prop_assert_eq!(resumed.next_seq(), uncut.next_seq());
        prop_assert_eq!(resumed.now(), uncut.now());
        prop_assert_eq!(resumed.window_records(), uncut.window_records());
        let a = resumed.result().clone();
        let b = uncut.result().clone();
        prop_assert_eq!(&a.groups, &b.groups);
        prop_assert_eq!(&a.ranked_users, &b.ranked_users);
        prop_assert_eq!(&a.ranked_items, &b.ranked_items);
    }
}
