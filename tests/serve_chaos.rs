//! Chaos suite for the supervised multi-shard serve tier: seeded
//! kill/stall fault plans injected into shard workers while a planted
//! campaign streams in under live query load.
//!
//! The contracts under test, matching the serve-tier failure model:
//!
//! * **Zero accepted-batch loss** — an acked batch survives worker
//!   crashes: the restarted worker replays the shard's retained log from
//!   its last checkpoint, and the post-recovery per-shard views are
//!   byte-identical to an uninterrupted run of the same stream.
//! * **Degraded-mode serving** — queries keep being answered during an
//!   outage, tagged `degraded` with the missing shard list; ingest for a
//!   down shard buffers to a bound then answers explicit `Rejected`.
//! * **Supervised recovery** — a killed shard is restarted (with capped
//!   seeded backoff) and reaches `Up` again within the budget; a stalled
//!   shard is marked `Down` and self-heals when it resumes.
//! * **Manifest resume** — a full process restart from `manifest.json`
//!   reconstructs routing state and global-sequence dedup, so redelivered
//!   pre-checkpoint batches are acked idempotently.

use fake_click_detection::engine::{ServeFault, ServeFaultPlan, WorkerPool};
use fake_click_detection::graph::{ItemId, UserId};
use fake_click_detection::obs::MetricsRegistry;
use fake_click_detection::prelude::*;
use fake_click_detection::serve::{
    start, start_router, Client, RetryPolicy, RouterConfig, ServeConfig, ServeState,
    SupervisorConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn world() -> SyntheticDataset {
    let attack = AttackConfig {
        num_groups: 2,
        ..AttackConfig::default()
    };
    generate(&DatasetConfig::tiny(), &attack).expect("valid configs")
}

fn batches(ds: &SyntheticDataset, per_batch: usize) -> Vec<Vec<(UserId, ItemId, u32)>> {
    let records: Vec<_> = ds.graph.edges().collect();
    records.chunks(per_batch).map(<[_]>::to_vec).collect()
}

/// Fast supervision knobs so recovery fits a test budget.
fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        probe_interval: Duration::from_millis(5),
        stall_timeout: Duration::from_millis(150),
        restart: RetryPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            deadline: None,
            jitter_seed: 0x5eed_5a4d,
        },
        max_restarts_per_shard: 16,
    }
}

fn router_config(shards: usize, plan: ServeFaultPlan) -> RouterConfig {
    RouterConfig {
        shards,
        serve: ServeConfig {
            swap_every_batches: 2,
            ..ServeConfig::default()
        },
        workers_per_shard: 1,
        buffer_per_shard: 4096,
        supervisor: fast_supervisor(),
        checkpoint_dir: None,
        checkpoint_every_batches: 0, // manual-only: keeps runs comparable
        fault_plan: plan,
        ..RouterConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ricd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Streams every batch and returns the per-shard final views, serialized.
/// The router's drain guarantees every accepted batch is processed first.
fn run_stream(
    cfg: RouterConfig,
    batches: &[Vec<(UserId, ItemId, u32)>],
) -> (Vec<String>, Vec<ServeState>) {
    let handle = start_router(cfg, MetricsRegistry::new(), "127.0.0.1:0", None).expect("bind");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let policy = RetryPolicy::with_deadline(Duration::from_secs(120));
    for (seq, b) in batches.iter().enumerate() {
        c.ingest_blocking_with(seq as u64, b, &policy)
            .expect("batch accepted");
    }
    c.shutdown().expect("shutdown");
    drop(c);
    let states = handle.join();
    let views = states
        .iter()
        .map(|s| serde_json::to_string(s.shared().load().view.groups()).expect("serialize"))
        .collect();
    (views, states)
}

#[test]
fn killed_shard_recovers_with_zero_accepted_batch_loss() {
    let ds = world();
    let stream = batches(&ds, 500);

    // Baseline: the same stream, no faults.
    let (baseline_views, _) = run_stream(router_config(2, ServeFaultPlan::none()), &stream);

    // Faulted: kill shard 0 twice and shard 1 once, at local sequences the
    // replay is guaranteed to reach.
    let mut plan = ServeFaultPlan::none();
    plan.add(0, 1, ServeFault::Kill)
        .add(0, 3, ServeFault::Kill)
        .add(1, 2, ServeFault::Kill);
    let faults = plan.len();
    let cfg = router_config(2, plan);
    let handle = start_router(cfg, MetricsRegistry::new(), "127.0.0.1:0", None).expect("bind");
    let addr = handle.addr();

    // Query load for the whole run: every response must be answered —
    // degraded is acceptable, an error or hang is not.
    let stop = Arc::new(AtomicBool::new(false));
    let probe_user = ds.truth.groups[0].workers[0];
    let prober = {
        let stop = stop.clone();
        std::thread::spawn(move || -> (u64, u64) {
            let mut c = Client::connect(addr).expect("prober connects");
            let (mut total, mut degraded) = (0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                let r = c
                    .query_risk(vec![probe_user], vec![])
                    .expect("risk query answered during chaos");
                total += 1;
                if r.degraded {
                    degraded += 1;
                }
            }
            (total, degraded)
        })
    };

    let mut c = Client::connect(addr).expect("connect");
    let policy = RetryPolicy::with_deadline(Duration::from_secs(120));
    for (seq, b) in stream.iter().enumerate() {
        c.ingest_blocking_with(seq as u64, b, &policy)
            .expect("batch accepted despite kills");
    }

    // Recovery budget: every shard back Up with the backlog drained.
    let deadline = Instant::now() + Duration::from_secs(60);
    let restarts = loop {
        let st = c.status().expect("status");
        let all_up = st.shards.iter().all(|s| s.state == "up" && s.backlog == 0);
        if all_up {
            break st.shards.iter().map(|s| s.restarts).sum::<u64>();
        }
        assert!(Instant::now() < deadline, "shards never recovered: {st:?}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(restarts, faults as u64, "every kill caused one restart");

    stop.store(true, Ordering::Relaxed);
    let (total, _degraded) = prober.join().expect("prober clean");
    assert!(total > 0, "prober actually ran");

    c.shutdown().expect("shutdown");
    drop(c);
    let states = handle.join();
    let faulted_views: Vec<String> = states
        .iter()
        .map(|s| serde_json::to_string(s.shared().load().view.groups()).expect("serialize"))
        .collect();
    assert_eq!(
        faulted_views, baseline_views,
        "post-recovery views must be byte-identical to the uninterrupted run"
    );
}

#[test]
fn stalled_shard_degrades_queries_and_bounded_buffer_rejects_then_recovers() {
    let ds = world();
    let stream = batches(&ds, 400);

    // Stall shard 0 for well past the stall budget, with a buffer small
    // enough that continued ingest hits the bound while it is stalled.
    let cfg = RouterConfig {
        buffer_per_shard: 3,
        ..router_config(2, ServeFaultPlan::stall_at(0, 2, 1200))
    };
    let handle = start_router(cfg, MetricsRegistry::new(), "127.0.0.1:0", None).expect("bind");
    let addr = handle.addr();
    let mut c = Client::connect(addr).expect("connect");

    // The ingester blocks inside its retry loop for most of the stall
    // window, so the Down/degraded observations run on their own
    // connection in the background.
    let stop = Arc::new(AtomicBool::new(false));
    let saw_down = Arc::new(AtomicBool::new(false));
    let saw_degraded_query = Arc::new(AtomicBool::new(false));
    let probe_user = ds.truth.groups[0].workers[0];
    let observer = {
        let (stop, saw_down, saw_degraded) =
            (stop.clone(), saw_down.clone(), saw_degraded_query.clone());
        std::thread::spawn(move || {
            let mut prober = Client::connect(addr).expect("prober connects");
            while !stop.load(Ordering::Relaxed) {
                let r = prober
                    .query_risk(vec![probe_user], vec![])
                    .expect("risk query during stall");
                if r.degraded {
                    saw_degraded.store(true, Ordering::Relaxed);
                }
                let st = prober.status().expect("status");
                if st.shards.iter().any(|s| s.state == "down") {
                    saw_down.store(true, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let policy = RetryPolicy::with_deadline(Duration::from_secs(120));
    let mut saw_rejection = false;
    for (seq, b) in stream.iter().enumerate() {
        let stats = c
            .ingest_blocking_with(seq as u64, b, &policy)
            .expect("batch accepted eventually");
        saw_rejection |= stats.rejections > 0;
    }
    stop.store(true, Ordering::Relaxed);
    observer.join().expect("observer clean");
    assert!(
        saw_rejection,
        "the bounded per-shard buffer never pushed back during the stall"
    );
    assert!(
        saw_down.load(Ordering::Relaxed),
        "the stalled shard was never marked down"
    );
    assert!(
        saw_degraded_query.load(Ordering::Relaxed),
        "queries during the stall were never tagged degraded"
    );

    // Self-heal: the stalled worker resumes, drains, and goes Up again.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let st = c.status().expect("status");
        if st.shards.iter().all(|s| s.state == "up" && s.backlog == 0) && !st.degraded {
            break;
        }
        assert!(Instant::now() < deadline, "stall never healed: {st:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let m = c.metrics(true).expect("metrics");
    assert!(
        m.counter("serve.supervisor.stalls_detected").unwrap_or(0) >= 1,
        "stall detection never fired"
    );
    c.shutdown().expect("shutdown");
    drop(c);
    handle.join();
}

#[test]
fn manifest_restart_resumes_the_topology_equivalently() {
    let ds = world();
    let stream = batches(&ds, 500);
    let split = stream.len() / 2;
    let dir = temp_dir("manifest");

    // Uninterrupted reference run over the full stream.
    let (reference_views, _) = run_stream(router_config(2, ServeFaultPlan::none()), &stream);

    // First process: half the stream, a coordinated checkpoint, shutdown.
    let cfg = RouterConfig {
        checkpoint_dir: Some(dir.clone()),
        ..router_config(2, ServeFaultPlan::none())
    };
    let handle = start_router(cfg, MetricsRegistry::new(), "127.0.0.1:0", None).expect("bind");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let policy = RetryPolicy::with_deadline(Duration::from_secs(120));
    for (seq, b) in stream[..split].iter().enumerate() {
        c.ingest_blocking_with(seq as u64, b, &policy)
            .expect("batch accepted");
    }
    let (manifest_path, _) = c.checkpoint_manifest().expect("coordinated checkpoint");
    assert!(
        manifest_path.ends_with("manifest.json"),
        "manifest path: {manifest_path}"
    );
    c.shutdown().expect("shutdown");
    drop(c);
    handle.join();

    // Second process resumes from the manifest. Redeliver an
    // already-covered batch first: it must be acked idempotently (global
    // sequence dedup survived the restart), then stream the rest.
    let cfg = RouterConfig {
        checkpoint_dir: Some(dir.clone()),
        ..router_config(2, ServeFaultPlan::none())
    };
    let handle = start_router(
        cfg,
        MetricsRegistry::new(),
        "127.0.0.1:0",
        Some(std::path::Path::new(&manifest_path)),
    )
    .expect("resume bind");
    let mut c = Client::connect(handle.addr()).expect("reconnect");
    c.ingest_blocking_with(0, &stream[0], &policy)
        .expect("pre-checkpoint redelivery acked idempotently");
    for (i, b) in stream[split..].iter().enumerate() {
        c.ingest_blocking_with((split + i) as u64, b, &policy)
            .expect("batch accepted after resume");
    }
    c.shutdown().expect("shutdown");
    drop(c);
    let states = handle.join();
    let resumed_views: Vec<String> = states
        .iter()
        .map(|s| serde_json::to_string(s.shared().load().view.groups()).expect("serialize"))
        .collect();
    assert_eq!(
        resumed_views, reference_views,
        "manifest-resumed views must match the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_detection_flags_the_planted_campaign_across_shard_counts() {
    let ds = world();
    let stream = batches(&ds, 600);
    for shards in [1usize, 2, 4] {
        let (views, states) = run_stream(router_config(shards, ServeFaultPlan::none()), &stream);
        assert_eq!(views.len(), shards);
        // Every planted worker/target is flagged by the merged view.
        let snaps: Vec<_> = states.iter().map(|s| s.shared().load()).collect();
        let views_ref: Vec<_> = snaps.iter().map(|snap| &snap.view).collect();
        let merged = fake_click_detection::core::riskview::RiskView::merged(1, &views_ref);
        for u in ds.truth.abnormal_users() {
            assert!(
                merged.user(u).flagged,
                "planted worker {u:?} not flagged at {shards} shard(s)"
            );
        }
        for i in ds.truth.abnormal_items() {
            assert!(
                merged.item(i).flagged,
                "planted target {i:?} not flagged at {shards} shard(s)"
            );
        }
        let organic_flagged = (0..50)
            .map(UserId)
            .filter(|u| !ds.truth.is_abnormal_user(*u))
            .filter(|u| merged.user(*u).flagged)
            .count();
        assert_eq!(
            organic_flagged, 0,
            "organic users misflagged at {shards} shard(s)"
        );
    }
}

#[test]
fn monolith_and_sharded_runs_agree_on_verdicts() {
    let ds = world();
    let stream = batches(&ds, 500);

    // Monolith reference over the classic single-state daemon.
    let state = ServeState::new(
        ServeConfig {
            swap_every_batches: 2,
            ..ServeConfig::default()
        },
        RicdPipeline::new(RicdParams::default()).with_pool(WorkerPool::new(2)),
    );
    let handle = start(state, "127.0.0.1:0").expect("bind monolith");
    let mut c = Client::connect(handle.addr()).expect("connect");
    for (seq, b) in stream.iter().enumerate() {
        c.ingest_blocking(seq as u64, b).expect("batch accepted");
    }
    let users = ds.truth.abnormal_users();
    let items = ds.truth.abnormal_items();
    c.checkpoint().expect("barrier: all batches processed");
    let mono = c.query_risk(users.clone(), items.clone()).expect("query");
    c.shutdown().expect("shutdown");
    drop(c);
    handle.join();

    // Sharded run over the same stream.
    let handle = start_router(
        router_config(4, ServeFaultPlan::none()),
        MetricsRegistry::new(),
        "127.0.0.1:0",
        None,
    )
    .expect("bind router");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let policy = RetryPolicy::with_deadline(Duration::from_secs(120));
    for (seq, b) in stream.iter().enumerate() {
        c.ingest_blocking_with(seq as u64, b, &policy)
            .expect("batch accepted");
    }
    // Barrier + drain so the merged view covers every batch.
    c.checkpoint_manifest().expect("coordinated barrier");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let st = c.status().expect("status");
        if st.shards.iter().all(|s| s.backlog == 0 && s.state == "up") {
            break;
        }
        assert!(Instant::now() < deadline, "router never drained: {st:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let sharded = c.query_risk(users.clone(), items.clone()).expect("query");
    assert!(!sharded.degraded, "healthy topology answered degraded");
    c.shutdown().expect("shutdown");
    drop(c);
    handle.join();

    for ((u, mv), (_, sv)) in mono.users.iter().zip(&sharded.users) {
        assert_eq!(
            mv.flagged, sv.flagged,
            "user {u:?}: monolith={mv:?} sharded={sv:?}"
        );
    }
    for ((i, mv), (_, sv)) in mono.items.iter().zip(&sharded.items) {
        assert_eq!(
            mv.flagged, sv.flagged,
            "item {i:?}: monolith={mv:?} sharded={sv:?}"
        );
    }
}

#[test]
fn checkpoints_racing_ingest_never_lose_acked_batches() {
    // Regression: the manifest's global-sequence cursor must be captured
    // *before* the shard barriers are enqueued (under the same routing
    // lock). A checkpoint racing live ingest could otherwise record a
    // cursor past batches the shard checkpoint files exclude, and their
    // redelivery after a process restart would be deduped into silence.
    // The client-driven checkpoints here also race the supervisor's
    // cadence-driven ones (`checkpoint_every_batches: 1`), exercising
    // coordinated-checkpoint serialization.
    let ds = world();
    let stream = batches(&ds, 40);
    let dir = temp_dir("ckpt-race");

    // Uninterrupted reference run over the full stream.
    let (reference_views, _) = run_stream(router_config(2, ServeFaultPlan::none()), &stream);

    // First process: one thread streams batches while another fires
    // coordinated checkpoints as fast as the server will take them.
    let cfg = RouterConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every_batches: 1,
        ..router_config(2, ServeFaultPlan::none())
    };
    let handle = start_router(cfg, MetricsRegistry::new(), "127.0.0.1:0", None).expect("bind");
    let policy = RetryPolicy::with_deadline(Duration::from_secs(120));
    let done = Arc::new(AtomicBool::new(false));
    let ckpt_thread = {
        let addr = handle.addr();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("checkpoint client");
            let mut last = None;
            while !done.load(Ordering::SeqCst) {
                if let Ok((path, _)) = c.checkpoint_manifest() {
                    last = Some(path);
                }
            }
            last
        })
    };
    let mut c = Client::connect(handle.addr()).expect("ingest client");
    for (seq, b) in stream.iter().enumerate() {
        c.ingest_blocking_with(seq as u64, b, &policy)
            .expect("batch accepted");
    }
    done.store(true, Ordering::SeqCst);
    let manifest_path = ckpt_thread
        .join()
        .expect("checkpoint thread")
        .expect("at least one coordinated checkpoint succeeded");
    c.shutdown().expect("shutdown");
    drop(c);
    let first_states = handle.join();
    let first_views: Vec<String> = first_states
        .iter()
        .map(|s| serde_json::to_string(s.shared().load().view.groups()).expect("serialize"))
        .collect();
    assert_eq!(
        first_views, reference_views,
        "checkpoint-racing run must not perturb the live views"
    );

    // Second process: resume from whatever manifest won, then redeliver
    // the WHOLE stream (at-least-once delivery). Covered batches must be
    // acked idempotently, uncovered ones re-routed — and the final views
    // must match the uninterrupted run's exactly.
    let cfg = RouterConfig {
        checkpoint_dir: Some(dir.clone()),
        ..router_config(2, ServeFaultPlan::none())
    };
    let handle = start_router(
        cfg,
        MetricsRegistry::new(),
        "127.0.0.1:0",
        Some(std::path::Path::new(&manifest_path)),
    )
    .expect("resume bind");
    let mut c = Client::connect(handle.addr()).expect("reconnect");
    for (seq, b) in stream.iter().enumerate() {
        c.ingest_blocking_with(seq as u64, b, &policy)
            .expect("redelivered batch accepted");
    }
    c.shutdown().expect("shutdown");
    drop(c);
    let states = handle.join();
    let resumed_views: Vec<String> = states
        .iter()
        .map(|s| serde_json::to_string(s.shared().load().view.groups()).expect("serialize"))
        .collect();
    assert_eq!(
        resumed_views, reference_views,
        "full redelivery after a checkpoint-racing run must reproduce the uninterrupted views"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
