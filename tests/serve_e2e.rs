//! Loopback end-to-end test of the online detection service: a planted
//! Ride Item's Coattails campaign streamed in over the wire protocol,
//! risk-queried, recommendation-served, checkpointed, and resumed — with a
//! concurrent query load observing no errors throughout.

use fake_click_detection::engine::WorkerPool;
use fake_click_detection::graph::{ItemId, UserId};
use fake_click_detection::prelude::*;
use fake_click_detection::serve::{start, Client, ServeConfig, ServeState};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tiny world with dense planted groups (full coverage, default click
/// intensity), so the streaming detector reliably flags every planted
/// worker and target.
fn world() -> SyntheticDataset {
    let attack = AttackConfig {
        num_groups: 2,
        ..AttackConfig::default()
    };
    generate(&DatasetConfig::tiny(), &attack).expect("valid configs")
}

fn pipeline() -> RicdPipeline {
    RicdPipeline::new(RicdParams::default()).with_pool(WorkerPool::new(2))
}

fn batches(ds: &SyntheticDataset, per_batch: usize) -> Vec<Vec<(UserId, ItemId, u32)>> {
    let records: Vec<_> = ds.graph.edges().collect();
    records.chunks(per_batch).map(<[_]>::to_vec).collect()
}

#[test]
fn planted_campaign_detected_and_cleaned_over_the_wire() {
    let ds = world();
    let state = ServeState::new(
        ServeConfig {
            swap_every_batches: 4,
            ..ServeConfig::default()
        },
        pipeline(),
    );
    let handle = start(state, "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr();

    // Concurrent query load on its own connection for the whole run: every
    // response must be well-formed (epoch-snapshotted views mean a query
    // never races a swap).
    let stop = Arc::new(AtomicBool::new(false));
    let prober = {
        let stop = stop.clone();
        let probe_user = ds.truth.groups[0].workers[0];
        let probe_item = ds.truth.groups[0].targets[0];
        std::thread::spawn(move || -> u64 {
            let mut c = Client::connect(addr).expect("prober connects");
            let mut queries = 0u64;
            let mut last_epoch = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let report = c
                    .query_risk(vec![probe_user], vec![probe_item])
                    .expect("risk query during ingest");
                assert!(report.epoch >= last_epoch, "epochs move forward only");
                last_epoch = report.epoch;
                let rec = c.recommend(probe_user, 5).expect("recommend during ingest");
                assert!(rec.items.len() <= 5);
                queries += 1;
            }
            queries
        })
    };

    // Stream the world in, tolerating (counting) backpressure rejections.
    let mut ingest = Client::connect(addr).expect("ingester connects");
    let mut rejections = 0u64;
    let mut next_seq = 0u64;
    for batch in &batches(&ds, 2000) {
        rejections += ingest
            .ingest_blocking(next_seq, batch)
            .expect("batch accepted eventually")
            .rejections;
        next_seq += 1;
    }
    let _ = rejections; // any value is fine; the bench asserts > 0 under load

    // One synthetic probe user per ridden hot item, each clicking ONLY that
    // hot item: their recommendations are exactly the hot anchor's served
    // list, which is where the attack buys its exposure.
    let mut probes: Vec<(UserId, ItemId, usize)> = Vec::new(); // (probe, hot, group)
    let mut probe_batch = Vec::new();
    let mut next_user = ds.graph.num_users() as u32;
    for (gi, g) in ds.truth.groups.iter().enumerate() {
        for &hot in &g.ridden_hot_items {
            let probe = UserId(next_user);
            next_user += 1;
            probes.push((probe, hot, gi));
            probe_batch.push((probe, hot, 1));
        }
    }
    ingest
        .ingest_blocking(next_seq, &probe_batch)
        .expect("probe batch accepted");

    // Wait until the published view covers every ingested batch.
    let deadline = Instant::now() + Duration::from_secs(120);
    let (epoch, view_groups) = loop {
        let m = ingest.metrics(true).expect("metrics");
        let swaps = m.counter("serve.swaps").unwrap_or(0);
        let batches_done = m.counter("serve.batches").unwrap_or(0);
        let depth = m.gauge("serve.ingest_queue_depth").unwrap_or(0);
        if depth == 0 && batches_done > 0 && swaps > 0 {
            // One explicit poll of the view after the queue drained: the
            // worker flushes on drain, so the epoch gauge is now stable.
            let epoch = m.gauge("serve.epoch").unwrap_or(0);
            let groups = m.gauge("serve.view_groups").unwrap_or(0);
            if groups > 0 {
                break (epoch, groups);
            }
        }
        assert!(Instant::now() < deadline, "view never converged: {m:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(epoch > 0);
    assert!(view_groups >= 2, "both planted groups detected");

    // Every planted worker and target is flagged by the live view.
    let report = ingest
        .query_risk(ds.truth.abnormal_users(), ds.truth.abnormal_items())
        .expect("risk query");
    for (u, v) in &report.users {
        assert!(v.flagged, "planted worker {u:?} not flagged");
        assert!(v.group.is_some());
    }
    for (i, v) in &report.items {
        assert!(v.flagged, "planted target {i:?} not flagged");
    }

    // Organic users stay clear.
    let organic: Vec<UserId> = (0..50)
        .map(UserId)
        .filter(|u| !ds.truth.is_abnormal_user(*u))
        .collect();
    let clear = ingest
        .query_risk(organic, vec![])
        .expect("organic risk query");
    let false_flags = clear.users.iter().filter(|(_, v)| v.flagged).count();
    assert_eq!(false_flags, 0, "organic users misflagged: {clear:?}");

    // Cleaned recommendations. The *dirty* index (forged wedges included)
    // provably surfaces planted targets in the ridden hot items' lists;
    // the served lists must not — the workers' wedges are subtracted, and
    // whatever organic co-click support a target keeps cannot put it back
    // into a top-10 dominated by genuinely co-clicked items.
    let dirty =
        fake_click_detection::recommender::I2iIndex::build(&ds.graph, 10, &WorkerPool::new(2));
    let mut attacks_landed = 0;
    for &(probe, hot, gi) in &probes {
        let group_targets = &ds.truth.groups[gi].targets;
        let dirty_hits = dirty
            .related(hot)
            .iter()
            .filter(|(v, _)| group_targets.contains(v))
            .count();
        if dirty_hits == 0 {
            continue; // this hot item's list resisted the attack even dirty
        }
        attacks_landed += 1;
        let rec = ingest.recommend(probe, 10).expect("probe recommend");
        assert!(!rec.items.is_empty(), "hot anchor {hot:?} serves a list");
        for (item, _) in &rec.items {
            assert!(
                !group_targets.contains(item),
                "probe {probe:?} (clicked only hot {hot:?}) was recommended planted \
                 target {item:?}; dirty list had {dirty_hits} planted hits"
            );
        }
    }
    assert!(
        attacks_landed > 0,
        "no ridden hot item had a dirty-list hit; the world is too weak to test cleaning"
    );

    // Checkpoint over the wire, shut down, and resume: the restored server
    // republishes an equivalent view before any new batch arrives.
    let ckpt = ingest.checkpoint().expect("checkpoint");
    stop.store(true, Ordering::Relaxed);
    let queries = prober.join().expect("prober clean");
    assert!(queries > 0, "prober actually ran");
    ingest.shutdown().expect("shutdown");
    drop(ingest);
    let final_state = handle.join();
    let groups_before = final_state.shared().load().view.groups().to_vec();

    let restored = ServeState::restore(ServeConfig::default(), pipeline(), ckpt);
    let handle2 = start(restored, "127.0.0.1:0").expect("rebind");
    let mut c2 = Client::connect(handle2.addr()).expect("reconnect");
    let report2 = c2
        .query_risk(ds.truth.abnormal_users(), vec![])
        .expect("risk query after resume");
    assert!(report2.epoch > 0, "restored server published a view");
    for (u, v) in &report2.users {
        assert!(v.flagged, "planted worker {u:?} lost across restart");
    }
    let groups_after = handle2_groups(&mut c2);
    assert_eq!(groups_after, groups_before.len(), "group count preserved");
    c2.shutdown().expect("shutdown restored server");
    drop(c2);
    handle2.join();
}

/// Reads the restored server's group count via a risk query.
fn handle2_groups(c: &mut Client) -> usize {
    c.query_risk(vec![], vec![])
        .expect("group count query")
        .groups
}
