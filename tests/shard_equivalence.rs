//! Integration proof of the sharding contract: on real datagen worlds, the
//! sharded pipeline (`run_sharded`) produces *identical* output to the
//! unsharded pipeline — same groups, same risk scores, same ranking — for
//! every shard configuration, including caps small enough to force
//! hash-splitting of merged components.

use std::sync::atomic::{AtomicUsize, Ordering};

use fake_click_detection::core::detect::Seeds;
use fake_click_detection::core::detect_groups_sharded;
use fake_click_detection::engine::WorkerPool;
use fake_click_detection::obs::MetricsRegistry;
use fake_click_detection::prelude::*;

fn world() -> SyntheticDataset {
    let attack = AttackConfig {
        num_groups: 6,
        target_coverage: 0.9,
        ..AttackConfig::evaluation()
    };
    generate(&DatasetConfig::small(), &attack).expect("valid configs")
}

#[test]
fn sharded_pipeline_matches_unsharded_groups_and_risk_ordering() {
    let ds = world();
    let baseline = RicdPipeline::new(RicdParams::default()).run(&ds.graph);
    assert!(
        !baseline.groups.is_empty(),
        "scenario sanity: planted attacks must be detected"
    );

    for (cfg, workers) in [
        (ShardConfig::default(), 1),
        (
            ShardConfig {
                shards: Some(4),
                max_users: None,
                kernel: KernelSelection::Auto,
            },
            4,
        ),
        // A cap far below any planted group's size: components get
        // hash-split and boundary items replicated, yet nothing may change.
        (
            ShardConfig {
                shards: None,
                max_users: Some(3),
                kernel: KernelSelection::Auto,
            },
            2,
        ),
        // The wedge-only baseline kernel must land on the same fixpoint.
        (
            ShardConfig {
                shards: None,
                max_users: Some(3),
                kernel: KernelSelection::WedgeOnly,
            },
            2,
        ),
    ] {
        let sharded = RicdPipeline::new(RicdParams::default())
            .with_pool(WorkerPool::new(workers))
            .run_sharded(&ds.graph, &cfg);
        assert_eq!(sharded.status, baseline.status, "cfg={cfg:?}");
        assert_eq!(sharded.groups, baseline.groups, "cfg={cfg:?}");
        assert_eq!(
            sharded.ranked_users, baseline.ranked_users,
            "user risk ordering diverged (cfg={cfg:?})"
        );
        assert_eq!(
            sharded.ranked_items, baseline.ranked_items,
            "item risk ordering diverged (cfg={cfg:?})"
        );
    }
}

/// The worker × kernel matrix: the same shard plan executed on 1, 2, and 4
/// pool workers, under both the dispatched kernel mix and the wedge-only
/// baseline, must be *byte-identical* — not just set-equal — in groups,
/// risk scores, and both rankings. Serialized JSON is the comparison so
/// any float formatting or ordering drift fails loudly.
#[test]
fn worker_and_kernel_matrix_is_byte_identical() {
    let ds = world();
    let render = |kernel: KernelSelection, workers: usize| {
        let cfg = ShardConfig {
            shards: Some(4),
            max_users: None,
            kernel,
        };
        let r = RicdPipeline::new(RicdParams::default())
            .with_pool(WorkerPool::new(workers))
            .run_sharded(&ds.graph, &cfg);
        assert!(
            !r.groups.is_empty(),
            "kernel={kernel:?} workers={workers}: no groups detected"
        );
        (
            serde_json::to_string(&r.groups).unwrap(),
            serde_json::to_string(&r.ranked_users).unwrap(),
            serde_json::to_string(&r.ranked_items).unwrap(),
        )
    };
    let baseline = render(KernelSelection::WedgeOnly, 1);
    for kernel in [KernelSelection::WedgeOnly, KernelSelection::Auto] {
        for workers in [1usize, 2, 4] {
            let got = render(kernel, workers);
            assert_eq!(
                got.0, baseline.0,
                "groups bytes diverged at kernel={kernel:?} workers={workers}"
            );
            assert_eq!(
                got.1, baseline.1,
                "ranked_users bytes diverged at kernel={kernel:?} workers={workers}"
            );
            assert_eq!(
                got.2, baseline.2,
                "ranked_items bytes diverged at kernel={kernel:?} workers={workers}"
            );
        }
    }
}

/// Chaos: a shard partition that panics mid-prune on its first attempt is
/// retried by the pool (PR-1 fault containment) and the run still converges
/// to exactly the unfaulted output.
///
/// The deadline closure is polled once on the coordinator after the
/// pre-filter (call 0) and then at the start of every shard task on the
/// worker threads, so panicking on call 1 detonates inside the first shard
/// task to start — never on the coordinator.
#[test]
fn shard_task_panic_is_retried_to_identical_output() {
    let ds = world();
    let params = RicdParams::default();
    let cfg = ShardConfig {
        shards: Some(4),
        max_users: None,
        ..ShardConfig::default()
    };
    let pool = WorkerPool::new(2);

    let clean = detect_groups_sharded(
        &ds.graph,
        &Seeds::none(),
        &params,
        &pool,
        &cfg,
        &|| false,
        None,
    )
    .expect("clean run completes");
    assert!(!clean.groups.is_empty(), "scenario sanity: groups expected");

    let registry = MetricsRegistry::new();
    let faulted_pool = WorkerPool::new(2).with_metrics(&registry);
    let calls = AtomicUsize::new(0);
    let faulted = detect_groups_sharded(
        &ds.graph,
        &Seeds::none(),
        &params,
        &faulted_pool,
        &cfg,
        &|| {
            if calls.fetch_add(1, Ordering::SeqCst) == 1 {
                panic!("injected shard fault");
            }
            false
        },
        None,
    )
    .expect("faulted run converges after retry");

    let caught = registry
        .snapshot()
        .counter("pool.panics_caught")
        .unwrap_or(0);
    assert!(caught >= 1, "the injected panic must be caught by the pool");
    assert_eq!(
        faulted.groups, clean.groups,
        "retry must converge to the same groups"
    );
}

#[test]
fn sharded_run_flags_every_planted_worker_the_baseline_flags() {
    let ds = world();
    let baseline = RicdPipeline::new(RicdParams::default()).run(&ds.graph);
    let sharded =
        RicdPipeline::new(RicdParams::default()).run_sharded(&ds.graph, &ShardConfig::default());
    assert_eq!(
        sharded.suspicious_users(),
        baseline.suspicious_users(),
        "flagged user set must be identical"
    );
    assert_eq!(
        sharded.suspicious_items(),
        baseline.suspicious_items(),
        "flagged item set must be identical"
    );
}
