//! Integration proof of the sharding contract: on real datagen worlds, the
//! sharded pipeline (`run_sharded`) produces *identical* output to the
//! unsharded pipeline — same groups, same risk scores, same ranking — for
//! every shard configuration, including caps small enough to force
//! hash-splitting of merged components.

use fake_click_detection::engine::WorkerPool;
use fake_click_detection::prelude::*;

fn world() -> SyntheticDataset {
    let attack = AttackConfig {
        num_groups: 6,
        target_coverage: 0.9,
        ..AttackConfig::evaluation()
    };
    generate(&DatasetConfig::small(), &attack).expect("valid configs")
}

#[test]
fn sharded_pipeline_matches_unsharded_groups_and_risk_ordering() {
    let ds = world();
    let baseline = RicdPipeline::new(RicdParams::default()).run(&ds.graph);
    assert!(
        !baseline.groups.is_empty(),
        "scenario sanity: planted attacks must be detected"
    );

    for (cfg, workers) in [
        (ShardConfig::default(), 1),
        (
            ShardConfig {
                shards: Some(4),
                max_users: None,
            },
            4,
        ),
        // A cap far below any planted group's size: components get
        // hash-split and boundary items replicated, yet nothing may change.
        (
            ShardConfig {
                shards: None,
                max_users: Some(3),
            },
            2,
        ),
    ] {
        let sharded = RicdPipeline::new(RicdParams::default())
            .with_pool(WorkerPool::new(workers))
            .run_sharded(&ds.graph, &cfg);
        assert_eq!(sharded.status, baseline.status, "cfg={cfg:?}");
        assert_eq!(sharded.groups, baseline.groups, "cfg={cfg:?}");
        assert_eq!(
            sharded.ranked_users, baseline.ranked_users,
            "user risk ordering diverged (cfg={cfg:?})"
        );
        assert_eq!(
            sharded.ranked_items, baseline.ranked_items,
            "item risk ordering diverged (cfg={cfg:?})"
        );
    }
}

#[test]
fn sharded_run_flags_every_planted_worker_the_baseline_flags() {
    let ds = world();
    let baseline = RicdPipeline::new(RicdParams::default()).run(&ds.graph);
    let sharded =
        RicdPipeline::new(RicdParams::default()).run_sharded(&ds.graph, &ShardConfig::default());
    assert_eq!(
        sharded.suspicious_users(),
        baseline.suspicious_users(),
        "flagged user set must be identical"
    );
    assert_eq!(
        sharded.suspicious_items(),
        baseline.suspicious_items(),
        "flagged item set must be identical"
    );
}
